"""Layouts for rank-3/4 arrays (the 3-D/4-D workload arrays)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout import col_major, layout_from_direction, row_major
from repro.linalg import IMat


def all_indices(shape):
    return np.indices(shape).reshape(len(shape), -1).T.astype(np.int64)


class TestCanonicalRank3:
    def test_e0_is_col_major(self):
        assert layout_from_direction((1, 0, 0)).d == col_major(3).d

    def test_elast_is_row_major(self):
        assert layout_from_direction((0, 0, 1)).d == row_major(3).d

    def test_middle_fast_dim(self):
        lay = layout_from_direction((0, 1, 0))
        # unit step moves the middle index
        assert lay.unit_step() == (0, 1, 0)

    def test_rank4(self):
        lay = layout_from_direction((0, 1, 0, 0))
        assert lay.unit_step() == (0, 1, 0, 0)
        am = lay.address_map((3, 4, 2, 2))
        addrs = am.address(all_indices((3, 4, 2, 2)))
        assert len(np.unique(addrs)) == 48


class TestDirectionSemantics:
    @settings(max_examples=20, deadline=None)
    @given(
        st.sampled_from(
            [(1, 0, 0), (0, 1, 0), (0, 0, 1), (1, 1, 0), (1, 0, 1)]
        )
    )
    def test_unit_step_is_direction(self, delta):
        lay = layout_from_direction(delta)
        assert lay.unit_step() == delta
        am = lay.address_map((5, 5, 5))
        base = np.array([2, 2, 2])
        stepped = base + np.array(delta)
        assert am.address_one(stepped) - am.address_one(base) == 1

    def test_injective_on_skewed_direction(self):
        lay = layout_from_direction((1, 1, 0))
        am = lay.address_map((4, 4, 4))
        addrs = am.address(all_indices((4, 4, 4)))
        assert len(np.unique(addrs)) == 64


class TestWorkloadArrayLayouts:
    def test_adi_plane_arrays_contiguous_runs(self):
        """The 3-D (N, N, 2) arrays under the optimizer's chosen
        direction (0,1,0): a (full-j, fixed-i, one-plane) slab must be a
        single run."""
        from repro.runtime import (
            IOContext,
            MachineParams,
            OutOfCoreArray,
            ParallelFileSystem,
        )

        params = MachineParams()
        pfs = ParallelFileSystem(params)
        lay = layout_from_direction((0, 1, 0))
        arr = OutOfCoreArray.create("U1", (8, 8, 2), lay, pfs, real=False)
        ctx = IOContext(params)
        calls = arr.count_tile_io(((3, 3), (0, 7), (0, 0)), ctx, False)
        assert calls == 1
