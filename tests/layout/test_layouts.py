import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout import (
    ANTIDIAGONAL_H,
    COL_MAJOR_H,
    DIAGONAL_H,
    ROW_MAJOR_H,
    BlockedLayout,
    Hyperplane,
    LinearLayout,
    antidiagonal,
    col_major,
    diagonal,
    row_major,
)
from repro.linalg import IMat


def all_indices(shape):
    grid = np.indices(shape).reshape(len(shape), -1).T
    return grid.astype(np.int64)


class TestHyperplane:
    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            Hyperplane.make((0, 0))

    def test_primitive_normalization(self):
        assert Hyperplane.make((2, 4)).g == (1, 2)

    def test_column_major_semantics(self):
        # (0,1): same hyperplane iff same column index (paper Section 3.2.1)
        assert COL_MAJOR_H.same_hyperplane((0, 3), (7, 3))
        assert not COL_MAJOR_H.same_hyperplane((0, 3), (0, 4))

    def test_paper_7_4_example(self):
        h = Hyperplane.make((7, 4))
        assert h.same_hyperplane((0, 7), (4, 0))  # 7*0+4*7 == 7*4+4*0
        assert not h.same_hyperplane((0, 0), (1, 0))

    def test_names(self):
        assert ROW_MAJOR_H.name == "row-major"
        assert COL_MAJOR_H.name == "column-major"
        assert DIAGONAL_H.name == "diagonal"
        assert ANTIDIAGONAL_H.name == "anti-diagonal"


class TestLinearLayout:
    def test_non_unimodular_rejected(self):
        with pytest.raises(ValueError):
            LinearLayout(IMat([[2, 0], [0, 1]]))

    def test_row_major_addresses(self):
        am = row_major(2).address_map((3, 4))
        assert am.address_one((0, 0)) == 0
        assert am.address_one((0, 1)) == 1
        assert am.address_one((1, 0)) == 4
        assert am.total_slots == 12

    def test_col_major_addresses(self):
        am = col_major(2).address_map((3, 4))
        assert am.address_one((0, 0)) == 0
        assert am.address_one((1, 0)) == 1
        assert am.address_one((0, 1)) == 3

    def test_col_major_3d(self):
        am = col_major(3).address_map((2, 3, 4))
        # first index varies fastest
        assert am.address_one((1, 0, 0)) - am.address_one((0, 0, 0)) == 1

    def test_hyperplane_roundtrip(self):
        assert LinearLayout.from_hyperplane((0, 1)).hyperplane == COL_MAJOR_H
        assert LinearLayout.from_hyperplane((1, 0)).hyperplane == ROW_MAJOR_H

    def test_from_general_hyperplane(self):
        lay = LinearLayout.from_hyperplane((7, 4))
        assert lay.hyperplane.g == (7, 4)
        assert abs(lay.d.det()) == 1

    @pytest.mark.parametrize(
        "layout",
        [row_major(2), col_major(2), diagonal(), antidiagonal(),
         LinearLayout.from_hyperplane((2, 1)), LinearLayout.from_hyperplane((7, 4))],
        ids=["row", "col", "diag", "antidiag", "g21", "g74"],
    )
    def test_addresses_are_injective(self, layout):
        am = layout.address_map((6, 7))
        addrs = am.address(all_indices((6, 7)))
        assert len(np.unique(addrs)) == 42
        assert addrs.min() >= 0
        assert addrs.max() < am.total_slots

    def test_diagonal_contiguity(self):
        # under the diagonal layout, anti... the hyperplane (1,-1) groups
        # elements with equal i-j: they must be file-adjacent
        lay = diagonal()
        am = lay.address_map((5, 5))
        on_diag = [(0, 0), (1, 1), (2, 2), (3, 3), (4, 4)]
        addrs = sorted(am.address_one(p) for p in on_diag)
        assert addrs == list(range(addrs[0], addrs[0] + 5))

    def test_unit_step_row_major(self):
        assert row_major(2).unit_step() == (0, 1)
        assert col_major(2).unit_step() == (1, 0)

    def test_unit_step_moves_address_by_one(self):
        for lay in (row_major(2), col_major(2), diagonal(), antidiagonal()):
            am = lay.address_map((8, 8))
            step = np.array(lay.unit_step())
            base = np.array([4, 4])
            assert am.address_one(base + step) - am.address_one(base) == 1

    def test_shape_rank_mismatch(self):
        with pytest.raises(ValueError):
            row_major(2).address_map((3,))

    @settings(max_examples=30, deadline=None)
    @given(st.sampled_from([(1, 0), (0, 1), (1, -1), (1, 1), (2, 1), (3, -2)]))
    def test_hyperplane_defines_contiguity_classes(self, g):
        """Elements on the same hyperplane occupy one contiguous address
        range (the defining property of the paper's file layouts)."""
        lay = LinearLayout.from_hyperplane(g)
        am = lay.address_map((6, 6))
        idx = all_indices((6, 6))
        addrs = am.address(idx)
        values = idx @ np.array(g)
        for c in np.unique(values):
            block = np.sort(addrs[values == c])
            assert (np.diff(block) == 1).all()


class TestBlockedLayout:
    def test_invalid_block(self):
        with pytest.raises(ValueError):
            BlockedLayout((0, 4))

    def test_block_is_contiguous(self):
        lay = BlockedLayout((2, 2))
        am = lay.address_map((4, 4))
        tile = np.array([(0, 0), (0, 1), (1, 0), (1, 1)])
        addrs = np.sort(am.address(tile))
        assert (np.diff(addrs) == 1).all()

    def test_injective(self):
        am = BlockedLayout((2, 3)).address_map((5, 7))
        addrs = am.address(all_indices((5, 7)))
        assert len(np.unique(addrs)) == 35

    def test_padding_counted_in_slots(self):
        am = BlockedLayout((2, 2)).address_map((3, 3))
        assert am.total_slots == 16  # 2x2 grid of 2x2 blocks

    def test_rank_mismatch(self):
        with pytest.raises(ValueError):
            BlockedLayout((2, 2)).address_map((4,))

    def test_describe(self):
        assert "chunk" in BlockedLayout((2, 2)).describe()
