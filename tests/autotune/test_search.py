"""Joint search: determinism, solver provenance, knob provenance, and
degenerate-space failures."""

import json
from dataclasses import replace

import pytest

from repro.autotune import TuneSpace, TuneSpaceError, solve_joint
from repro.cache import CacheConfig
from repro.collective.planner import CollectiveConfig
from repro.experiments.harness import _scaled_params
from repro.optimizer.ilp import SOLVERS
from repro.workloads import build_analytics, build_workload

N = 24
PARAMS = replace(_scaled_params(N), n_io_nodes=4)


def _solve(workload="adi", *, analytics=False, **kw):
    build = build_analytics if analytics else build_workload
    kw.setdefault("params", PARAMS)
    kw.setdefault("n_nodes", 4)
    return solve_joint(build(workload, N), **kw)


class TestSolveJoint:
    def test_decision_shape(self):
        d = _solve()
        assert d.solver in SOLVERS
        assert d.n_nodes == 4
        assert d.predicted_cost_s > 0
        assert set(d.tile_sizes) == {n.name for n in d.program.nests}
        assert all(b >= 1 for b in d.tile_sizes.values())
        assert 0 <= d.cache_budget < d.memory_budget

    def test_deterministic(self):
        a, b = _solve(), _solve()
        assert a.to_dict() == b.to_dict()

    def test_solver_provenance_milp(self):
        d = _solve(solver="auto")
        # scipy ships in the test environment, so auto resolves to milp
        assert d.solver == "milp"

    @pytest.mark.parametrize("solver", ["exhaustive", "descent"])
    def test_explicit_solvers_run_and_record(self, solver):
        d = _solve(solver=solver)
        assert d.solver == solver

    def test_exhaustive_matches_milp_objective(self):
        a = _solve(solver="milp")
        b = _solve(solver="exhaustive")
        assert a.objective == pytest.approx(b.objective, rel=1e-9)

    def test_unknown_solver_rejected(self):
        with pytest.raises(ValueError, match="unknown solver"):
            _solve(solver="simplex")

    def test_knob_provenance_complete(self):
        d = _solve()
        assert [k.knob for k in d.knobs] == [
            "layouts", "tile_sizes", "cache_budget", "cb_nodes"
        ]
        for k in d.knobs:
            assert k.predicted_s == pytest.approx(d.predicted_cost_s)
            # reverting the chosen setting never improves the model:
            # the sweep already considered the default
            assert k.delta_s >= -1e-9

    def test_report_carries_autotune_event(self):
        d = _solve()
        kinds = {e.kind for e in d.report}
        assert {"solver", "autotune", "knob"} <= kinds

    def test_to_dict_json_serializable(self):
        json.dumps(_solve().to_dict())


class TestRunConfig:
    def test_version_config_carries_ilp_layouts(self):
        d = _solve()
        cfg = d.version_config()
        assert cfg.name == "autotune"
        # layout_objects fills row-major defaults for untuned arrays
        assert set(cfg.layouts) >= set(d.decision.layouts)

    def test_cache_config_none_when_budget_zero(self):
        d = _solve(space=TuneSpace(cache_fractions=(0.0,)))
        assert d.cache_budget == 0
        assert d.cache_config() is None
        assert d.run_kwargs()["cache"] is None

    def test_cache_config_reflects_choice(self):
        d = _solve("pipeline", analytics=True)
        if d.cache_budget > 0:
            cc = d.cache_config()
            assert isinstance(cc, CacheConfig)
            assert cc.budget_elements == d.cache_budget

    def test_collective_config_matches_cb(self):
        d = _solve()
        cc = d.collective_config()
        if d.cb_nodes is None:
            assert cc is None
        else:
            assert isinstance(cc, CollectiveConfig)
            assert cc.cb_nodes == d.cb_nodes

    def test_run_kwargs_keys(self):
        assert set(_solve().run_kwargs()) == {
            "cache", "tile_sizes", "collective"
        }


class TestDegenerateSpaces:
    def test_cb_beyond_ranks_surfaces(self):
        with pytest.raises(TuneSpaceError, match="exceed"):
            _solve(space=TuneSpace(cb_nodes=(None, 8)), n_nodes=4)

    def test_cache_budget_below_one_tile(self):
        with pytest.raises(TuneSpaceError, match="below"):
            _solve(space=TuneSpace(cache_budget_elements=1))

    def test_cache_budget_at_memory_budget_infeasible(self):
        d = _solve()
        with pytest.raises(TuneSpaceError, match="cache budgets"):
            _solve(space=TuneSpace(
                cache_budget_elements=d.memory_budget * 2,
                cache_fractions=(0.5,),
            ))

    def test_explicit_tile_candidates_used(self):
        d = _solve(space=TuneSpace(
            tile_sizes={"adi.x": [2]}, cache_fractions=(0.0,)
        ))
        assert d.tile_sizes["adi.x"] == 2
