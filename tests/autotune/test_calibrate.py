"""Calibration: exact parameter recovery on simulated runs and named
failures on degenerate sample sets."""

import math
from dataclasses import replace

import pytest

from repro.autotune import (
    CalibrationError,
    CalibrationSample,
    calibrate,
    fit_linear,
    samples_from_run,
)
from repro.experiments.harness import _scaled_params
from repro.optimizer import build_version
from repro.parallel import run_version_parallel
from repro.runtime import MachineParams
from repro.workloads import build_workload

N = 24
TRUE = replace(_scaled_params(N), n_io_nodes=4)


def _run(workload="adi", n_nodes=2, params=TRUE):
    cfg = build_version("c-opt", build_workload(workload, N))
    return run_version_parallel(cfg, n_nodes, params=params)


def _synthetic(latency, bandwidth, pairs):
    return [
        CalibrationSample(
            calls=c, nbytes=b, seconds=latency * c + b / bandwidth
        )
        for c, b in pairs
    ]


class TestFitLinear:
    def test_recovers_generating_parameters(self):
        samples = _synthetic(
            0.01, 2.0e6, [(10, 1e5), (40, 8e5), (7, 3e6), (100, 5e4)]
        )
        fit = fit_linear(samples)
        assert fit.latency_s == pytest.approx(0.01, rel=1e-9)
        assert fit.bandwidth_bps == pytest.approx(2.0e6, rel=1e-9)
        assert fit.residual_s == pytest.approx(0.0, abs=1e-9)
        assert fit.n_samples == 4

    def test_too_few_samples_named(self):
        with pytest.raises(CalibrationError, match="need >= 2 samples"):
            fit_linear([CalibrationSample(1, 1e3, 0.1)])

    def test_min_samples_threshold_respected(self):
        samples = _synthetic(0.01, 1e6, [(10, 1e5), (20, 9e5)])
        with pytest.raises(CalibrationError, match="need >= 3"):
            fit_linear(samples, min_samples=3)

    def test_non_finite_sample_named(self):
        samples = _synthetic(0.01, 1e6, [(10, 1e5), (20, 9e5)])
        samples.append(CalibrationSample(math.nan, 1e3, 0.1))
        with pytest.raises(CalibrationError, match="non-finite"):
            fit_linear(samples)

    def test_negative_sample_named(self):
        samples = _synthetic(0.01, 1e6, [(10, 1e5), (20, 9e5)])
        samples.append(CalibrationSample(-1.0, 1e3, 0.1))
        with pytest.raises(CalibrationError, match="negative"):
            fit_linear(samples)

    def test_collinear_samples_named(self):
        # identical (calls, bytes) ratios leave the normal matrix
        # singular no matter how many samples there are
        samples = _synthetic(
            0.01, 1e6, [(10, 1e5), (20, 2e5), (40, 4e5)]
        )
        with pytest.raises(CalibrationError, match="collinear"):
            fit_linear(samples)

    def test_nonpositive_bandwidth_named(self):
        # seconds *decreasing* with bytes at fixed calls
        samples = [
            CalibrationSample(10, 1e5, 2.0),
            CalibrationSample(10, 9e5, 0.1),
            CalibrationSample(50, 1e5, 9.0),
        ]
        with pytest.raises(CalibrationError, match="non-positive"):
            fit_linear(samples)

    def test_channel_appears_in_message(self):
        with pytest.raises(CalibrationError, match="net:"):
            fit_linear([], channel="net")


class TestSamplesFromRun:
    def test_per_rank_per_nest_samples(self):
        run = _run(n_nodes=2)
        io, _net = samples_from_run(run)
        # 2 ranks x 3 adi nests
        assert len(io) == 6
        assert all(s.seconds > 0 for s in io)
        assert {s.source.split(":")[0] for s in io} == {"rank0", "rank1"}

    def test_single_run_result_accepted(self):
        run = _run(n_nodes=1)
        io, _ = samples_from_run(run.node_results[0])
        assert len(io) == 3


class TestCalibrate:
    def test_exact_recovery_from_drifted_belief(self):
        """The simulator prices I/O exactly linearly, so the fit
        recovers the machine that generated the run to machine
        precision regardless of what was believed."""
        believed = replace(
            TRUE,
            io_latency_s=TRUE.io_latency_s * 3.0,
            io_bandwidth_bps=TRUE.io_bandwidth_bps * 0.5,
        )
        result = calibrate(_run(n_nodes=2), believed=believed)
        assert result.params.io_latency_s == pytest.approx(
            TRUE.io_latency_s, rel=1e-9
        )
        assert result.params.io_bandwidth_bps == pytest.approx(
            TRUE.io_bandwidth_bps, rel=1e-9
        )
        assert result.io.residual_s < 1e-6

    def test_non_fitted_fields_carry_over(self):
        believed = replace(TRUE, io_latency_s=1.0)
        result = calibrate(_run(), believed=believed)
        assert result.params.stripe_bytes == TRUE.stripe_bytes
        assert result.params.memory_fraction == TRUE.memory_fraction
        assert result.params.element_size == TRUE.element_size

    def test_net_fit_absent_without_redistribution(self):
        result = calibrate(_run(), believed=TRUE)
        assert result.net is None
        assert "net" not in result.to_dict()

    def test_accepts_prebuilt_sample_tuple(self):
        io = _synthetic(0.02, 4e6, [(10, 1e5), (3, 8e5), (77, 2e4)])
        result = calibrate((io, []), believed=MachineParams())
        assert result.params.io_latency_s == pytest.approx(0.02, rel=1e-9)
        assert result.params.io_bandwidth_bps == pytest.approx(
            4e6, rel=1e-9
        )

    def test_to_dict_is_json_shaped(self):
        import json

        result = calibrate(_run(), believed=TRUE)
        json.dumps(result.to_dict())
