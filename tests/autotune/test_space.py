"""Tuning-space validation: degenerate spaces fail with named errors."""

import pytest

from repro.autotune import AutotuneError, TuneSpace, TuneSpaceError


class TestValidation:
    def test_default_space_is_valid(self):
        TuneSpace()

    def test_empty_tile_candidates_named(self):
        with pytest.raises(TuneSpaceError, match="empty candidate tile"):
            TuneSpace(tile_sizes={"nest1": []})

    def test_tile_candidates_below_one(self):
        with pytest.raises(TuneSpaceError, match="tile sizes must be >= 1"):
            TuneSpace(tile_sizes={"nest1": [4, 0]})

    def test_empty_tile_fractions(self):
        with pytest.raises(TuneSpaceError, match="tile_fractions"):
            TuneSpace(tile_fractions=())

    def test_tile_fraction_out_of_range(self):
        with pytest.raises(TuneSpaceError, match="tile_fractions"):
            TuneSpace(tile_fractions=(1.5,))

    def test_empty_cache_fractions(self):
        with pytest.raises(TuneSpaceError, match="cache_fractions"):
            TuneSpace(cache_fractions=())

    def test_cache_fraction_whole_budget_rejected(self):
        # 1.0 would leave no compute tiles at all
        with pytest.raises(TuneSpaceError, match="cache_fractions"):
            TuneSpace(cache_fractions=(0.0, 1.0))

    def test_cache_budget_below_one_element(self):
        with pytest.raises(TuneSpaceError, match="cache_budget_elements"):
            TuneSpace(cache_budget_elements=0)

    def test_empty_cb_nodes(self):
        with pytest.raises(TuneSpaceError, match="cb_nodes"):
            TuneSpace(cb_nodes=())

    def test_cb_nodes_below_one(self):
        with pytest.raises(TuneSpaceError, match="cb_nodes"):
            TuneSpace(cb_nodes=(None, 0))

    def test_errors_are_value_errors(self):
        assert issubclass(TuneSpaceError, AutotuneError)
        assert issubclass(AutotuneError, ValueError)


class TestRanks:
    def test_cb_beyond_ranks_rejected(self):
        space = TuneSpace(cb_nodes=(None, 8))
        with pytest.raises(TuneSpaceError, match="exceed the run's 4 ranks"):
            space.validate_ranks(4)

    def test_cb_within_ranks_ok(self):
        TuneSpace(cb_nodes=(None, 4)).validate_ranks(4)

    def test_default_for_filters_instead_of_raising(self):
        space = TuneSpace.default_for(2)
        space.validate_ranks(2)
        assert all(k is None or k <= 2 for k in space.cb_nodes)
        assert None in space.cb_nodes

    def test_default_for_keeps_full_list_at_scale(self):
        assert TuneSpace.default_for(8).cb_nodes == TuneSpace().cb_nodes


class TestTileCandidates:
    def test_fractions_of_planner_max(self):
        space = TuneSpace(tile_fractions=(1.0, 0.5, 0.25))
        assert space.tile_candidates("n", 16) == [16, 8, 4]

    def test_explicit_clamped_and_deduped(self):
        space = TuneSpace(tile_sizes={"n": [64, 8, 8, 2]})
        assert space.tile_candidates("n", 16) == [16, 8, 2]

    def test_never_empty_even_for_tiny_planner_max(self):
        space = TuneSpace(tile_fractions=(0.01,))
        assert space.tile_candidates("n", 3) == [1]
