"""The closed loop: state machine, drift triggering, recalibration
recovery, telemetry, and report integration."""

from dataclasses import replace

import pytest

from repro.autotune import (
    AutotuneConfig,
    AutotuneConfigError,
    AutotuneError,
    Autotuner,
)
from repro.experiments.harness import _scaled_params
from repro.obs import Observability, _payload_report
from repro.workloads import build_workload

N = 24
PARAMS = replace(_scaled_params(N), n_io_nodes=4)


def _drifted(params, latency=3.0, bandwidth=2.0):
    return replace(
        params,
        io_latency_s=params.io_latency_s * latency,
        io_bandwidth_bps=params.io_bandwidth_bps / bandwidth,
    )


def _tuner(**kw):
    kw.setdefault("params", PARAMS)
    kw.setdefault("n_nodes", 4)
    return Autotuner(build_workload("adi", N), **kw)


class TestConfigValidation:
    def test_default_valid(self):
        AutotuneConfig()

    @pytest.mark.parametrize("field,value", [
        ("cost_drift_threshold", 0.0),
        ("call_error_threshold", -1.0),
        ("io_ratio_band", (2.0, 1.0)),
        ("io_ratio_band", (0.0, 2.0)),
        ("min_samples", 1),
        ("max_recalibrations", 0),
    ])
    def test_bad_fields_named(self, field, value):
        with pytest.raises(AutotuneConfigError, match=field):
            AutotuneConfig(**{field: value})


class TestStateMachine:
    def test_starts_idle(self):
        assert _tuner().state == "idle"

    def test_solve_moves_to_monitoring(self):
        t = _tuner()
        d = t.solve()
        assert t.state == "monitoring"
        assert t.resolves == 1
        assert d is t.decision

    def test_observe_before_solve_raises(self):
        t = _tuner()
        with pytest.raises(AutotuneError, match="before solve"):
            t.observe(None)

    def test_run_once_solves_lazily(self):
        t = _tuner()
        run = t.run_once()
        assert t.decision is not None
        assert run.n_nodes == 4

    def test_in_band_stays_monitoring(self):
        """With the believed machine equal to the true machine, the
        modeled cost is close enough that the loop never trips."""
        t = _tuner(config=AutotuneConfig(cost_drift_threshold=0.7))
        t.solve()
        event = t.observe(t.run_once())
        assert event["event"] == "in_band"
        assert t.state == "monitoring"
        assert t.recalibrations == 0
        assert t.drift_events == 0


class TestDriftRecovery:
    def test_injected_drift_triggers_and_recovers(self):
        """Run against a machine 3x slower in latency and 2x slower in
        bandwidth than believed: the loop detects the drift, refits the
        believed params to the true machine exactly, and the follow-up
        observation lands back inside the threshold."""
        t = _tuner()
        t.solve()
        true = _drifted(PARAMS)
        first = t.observe(t.run_once(true_params=true))
        assert first["event"] == "recalibrated"
        assert t.drift_events == 1
        assert t.recalibrations == 1
        assert t.resolves == 2
        # believed parameters now match the true machine exactly
        assert t.params.io_latency_s == pytest.approx(
            true.io_latency_s, rel=1e-9
        )
        assert t.params.io_bandwidth_bps == pytest.approx(
            true.io_bandwidth_bps, rel=1e-9
        )
        second = t.observe(t.run_once(true_params=true))
        assert second["event"] == "in_band"
        assert second["cost_drift"] <= t.config.cost_drift_threshold
        assert t.recalibrations == 1

    def test_recalibration_cap_enforced(self):
        t = _tuner(config=AutotuneConfig(max_recalibrations=1))
        t.solve()
        t.observe(t.run_once(true_params=_drifted(PARAMS)))
        # the machine drifts AGAIN after the loop already spent its
        # one allowed recalibration
        event = t.observe(t.run_once(
            true_params=_drifted(PARAMS, latency=20.0, bandwidth=10.0)
        ))
        assert event["event"] == "recalibration_cap"
        assert t.recalibrations == 1

    def test_parameter_shift_recorded(self):
        t = _tuner()
        t.solve()
        event = t.observe(t.run_once(true_params=_drifted(PARAMS)))
        assert event["io_latency_s"]["old"] == PARAMS.io_latency_s
        assert event["io_latency_s"]["new"] == pytest.approx(
            PARAMS.io_latency_s * 3.0, rel=1e-9
        )
        assert "fit" in event


class TestTelemetry:
    def test_counters_and_gauges(self):
        obs = Observability()
        t = _tuner(obs=obs)
        t.solve()
        t.observe(t.run_once(true_params=_drifted(PARAMS)))
        snap = obs.metrics.to_dict()
        assert snap["autotune.resolves"]["value"] == 2
        assert snap["autotune.recalibrations"]["value"] == 1
        assert snap["autotune.drift_detected"]["value"] == 1
        assert snap[f"autotune.solver_{t.decision.solver}"]["value"] == 2
        assert snap["autotune.cost_drift"]["value"] > 0
        assert snap["autotune.predicted_cost_s"]["value"] == \
            pytest.approx(t.decision.predicted_cost_s)

    def test_summary_schema(self):
        t = _tuner()
        t.solve()
        t.observe(t.run_once())
        s = t.summary()
        assert s["state"] == "monitoring"
        assert s["resolves"] == 1
        assert s["solver"] == t.decision.solver
        assert s["predicted_cost_s"] == t.decision.predicted_cost_s
        assert {"measured_io_s", "cost_drift", "knobs", "history"} <= \
            set(s)
        assert all({"event", "detail"} <= set(h) for h in s["history"])

    def test_payload_and_report_section(self):
        obs = Observability()
        t = _tuner(obs=obs)
        t.solve()
        t.observe(t.run_once(true_params=_drifted(PARAMS)))
        payload = obs.to_payload()
        assert payload["autotune"]["recalibrations"] == 1
        text = _payload_report(payload)
        assert "autotuning (repro.autotune)" in text
        assert "recalibrations: 1" in text

    def test_journal_round_trip(self):
        import io

        from repro.obs import Journal
        from repro.obs.journal import payload_from_journal, read_journal

        buf = io.StringIO()
        obs = Observability(journal=Journal(buf))
        t = _tuner(obs=obs)
        t.solve()
        t.observe(t.run_once())
        events = read_journal(io.StringIO(buf.getvalue()))
        payload = payload_from_journal(events)
        assert payload["autotune"]["state"] == "monitoring"
