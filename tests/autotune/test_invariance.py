"""Off-by-default contract: with no tuner in the picture, every
execution path is bit-identical to the pre-autotune tree.

``run_version_parallel`` grew ``cache``/``tile_sizes`` kwargs and
``plan_nest`` grew ``force_block`` for the tuner's sake; these pins
hold the None/absent paths to exactly the same counters on the paper's
motivating kernels across direct, independent-parallel and two-phase
collective execution.
"""

from dataclasses import asdict, replace

import pytest

from repro.engine.plan import plan_nest
from repro.experiments.harness import _scaled_params
from repro.optimizer import build_version
from repro.parallel import CollectiveConfig, run_version_parallel
from repro.transforms import normalize_program
from repro.transforms.tiling import ooc_tiling
from repro.workloads import build_workload

N = 24
PARAMS = replace(_scaled_params(N), n_io_nodes=4)


def _stats(workload, n_nodes, collective=None, **kw):
    cfg = build_version("c-opt", build_workload(workload, N))
    run = run_version_parallel(
        cfg, n_nodes, params=PARAMS, collective=collective, **kw
    )
    return asdict(run.total_stats)


@pytest.mark.parametrize("workload", ["adi", "mxm"])
class TestBitIdenticalOff:
    def test_direct(self, workload):
        base = _stats(workload, 1)
        assert _stats(workload, 1, cache=None, tile_sizes=None) == base

    def test_independent_parallel(self, workload):
        base = _stats(workload, 4)
        assert _stats(workload, 4, cache=None, tile_sizes=None) == base

    def test_two_phase_collective(self, workload):
        coll = CollectiveConfig(mode="always", cb_nodes=2)
        base = _stats(workload, 4, collective=coll)
        assert _stats(
            workload, 4, collective=coll, cache=None, tile_sizes=None
        ) == base


class TestForceBlock:
    def _nest(self):
        p = normalize_program(build_workload("adi", N))
        b = p.binding()
        shapes = {a.name: a.shape(b) for a in p.arrays}
        return p.nests[0], b, shapes

    def test_none_is_identity(self):
        nest, b, shapes = self._nest()
        spec = ooc_tiling(nest)
        a = plan_nest(nest, spec, 512, b, shapes)
        c = plan_nest(nest, spec, 512, b, shapes, force_block=None)
        assert (a.tile_size, a.spec, a.footprint_elements) == \
            (c.tile_size, c.spec, c.footprint_elements)

    def test_cap_at_planner_choice_is_identity(self):
        nest, b, shapes = self._nest()
        spec = ooc_tiling(nest)
        a = plan_nest(nest, spec, 512, b, shapes)
        c = plan_nest(
            nest, spec, 512, b, shapes, force_block=a.tile_size
        )
        assert c.tile_size == a.tile_size

    def test_cap_only_shrinks(self):
        nest, b, shapes = self._nest()
        spec = ooc_tiling(nest)
        a = plan_nest(nest, spec, 512, b, shapes)
        c = plan_nest(nest, spec, 512, b, shapes, force_block=10**9)
        assert c.tile_size == a.tile_size

    def test_invalid_block_rejected(self):
        nest, b, shapes = self._nest()
        with pytest.raises(ValueError, match="force_block"):
            plan_nest(nest, ooc_tiling(nest), 512, b, shapes,
                      force_block=0)
