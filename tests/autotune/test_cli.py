"""``python -m repro.autotune`` surface."""

import json

import pytest

from repro.autotune.cli import main


class TestSolve:
    def test_human_output(self, capsys):
        assert main(["solve", "--workload", "adi", "--n", "16",
                     "--nodes", "2"]) == 0
        out = capsys.readouterr().out
        assert "joint config" in out
        assert "ILP (" in out

    def test_json_output(self, capsys):
        assert main(["solve", "--workload", "mxm", "--n", "16",
                     "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["solver"] in ("milp", "exhaustive", "descent")
        assert record["predicted_cost_s"] > 0

    def test_descent_solver_requested(self, capsys):
        assert main(["solve", "--workload", "trans", "--n", "16",
                     "--solver", "descent", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["solver"] == "descent"

    def test_unknown_workload_exits_2(self, capsys):
        assert main(["solve", "--workload", "nope"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_analytics_workload_accepted(self, capsys):
        assert main(["solve", "--workload", "window", "--n", "16",
                     "--json"]) == 0
        json.loads(capsys.readouterr().out)


class TestCalibrate:
    def test_recovers_true_machine(self, capsys):
        assert main(["calibrate", "--workload", "mxm", "--n", "16",
                     "--nodes", "2", "--perturb-latency", "4.0",
                     "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        fitted = record["fitted"]["io"]
        assert fitted["latency_s"] == pytest.approx(
            record["true"]["io_latency_s"], rel=1e-6
        )
        assert fitted["bandwidth_bps"] == pytest.approx(
            record["true"]["io_bandwidth_bps"], rel=1e-6
        )


class TestLoop:
    def test_drift_detected_then_in_band(self, capsys):
        assert main(["loop", "--workload", "adi", "--n", "16",
                     "--nodes", "2", "--rounds", "2", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        events = [r["event"] for r in record["rounds"]]
        assert events[0] == "recalibrated"
        assert events[-1] == "in_band"
        assert record["summary"]["recalibrations"] == 1


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
