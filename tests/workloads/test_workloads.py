import re

import numpy as np
import pytest

from repro.engine import OOCExecutor, interpret_program
from repro.engine.interpreter import initial_arrays
from repro.optimizer import VERSION_NAMES, build_version, optimize_program
from repro.runtime import MachineParams
from repro.workloads import WORKLOADS, build_workload, workload_names

SMALL = MachineParams(n_io_nodes=4, stripe_bytes=128, io_latency_s=0.002)


class TestRegistry:
    def test_ten_workloads(self):
        assert len(WORKLOADS) == 10
        assert set(workload_names()) == {
            "mat", "mxm", "adi", "vpenta", "btrix",
            "emit", "syr2k", "htribk", "gfunp", "trans",
        }

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            build_workload("nope")

    def test_builds_with_custom_n(self):
        p = build_workload("mat", 16)
        assert p.binding()["N"] == 16

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_table1_iter_column(self, name):
        """The `iter` column of Table 1 is the nest weight."""
        p = build_workload(name, 8)
        meta = WORKLOADS[name]
        assert all(n.weight == meta.iters for n in p.nests)


def _count_arrays(program, rank):
    return sum(1 for a in program.arrays if a.rank == rank)


class TestTable1ArrayShapes:
    """Array counts/dimensionalities must match the paper's Table 1."""

    CASES = {
        "mat": {2: 3},
        "mxm": {2: 3},
        "adi": {1: 3, 3: 3},
        "vpenta": {2: 7, 3: 2},
        "btrix": {1: 25, 4: 4},
        "emit": {1: 10, 3: 3},
        "syr2k": {2: 3},
        "htribk": {2: 5},
        "gfunp": {1: 1, 2: 5},
        "trans": {2: 2},
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_counts(self, name):
        p = build_workload(name, 8)
        for rank, count in self.CASES[name].items():
            assert _count_arrays(p, rank) == count, (
                f"{name}: expected {count} arrays of rank {rank}"
            )
        total = sum(self.CASES[name].values())
        assert len(p.arrays) == total


class TestWorkloadSemantics:
    """Every version of every workload computes the same arrays as the
    in-core reference interpreter (small sizes, real execution)."""

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_copt_semantics(self, name):
        p = build_workload(name, 6)
        binding = p.binding()
        init = initial_arrays(p, binding)
        expect = interpret_program(p, initial=init)
        cfg = build_version("c-opt", p, params=SMALL)
        ex = OOCExecutor(
            cfg.program, cfg.layouts, params=SMALL, real=True,
            tiling=cfg.tiling, storage_spec=cfg.storage_spec,
            memory_budget=2000, initial=init,
        )
        ex.run()
        for arr in p.arrays:
            np.testing.assert_allclose(
                ex.array_data(arr.name), expect[arr.name],
                err_msg=f"{name}:{arr.name}", rtol=1e-10, atol=1e-10,
            )

    @pytest.mark.parametrize("version", ["col", "row", "d-opt", "h-opt"])
    def test_gfunp_all_versions(self, version):
        p = build_workload("gfunp", 6)
        init = initial_arrays(p, p.binding())
        expect = interpret_program(p, initial=init)
        cfg = build_version(version, p, params=SMALL)
        ex = OOCExecutor(
            cfg.program, cfg.layouts, params=SMALL, real=True,
            tiling=cfg.tiling, storage_spec=cfg.storage_spec,
            memory_budget=2000, initial=init,
        )
        ex.run()
        for arr in p.arrays:
            np.testing.assert_allclose(
                ex.array_data(arr.name), expect[arr.name],
                err_msg=f"gfunp:{arr.name}",
            )


class TestWorkloadOptimizationShapes:
    """Per-code qualitative behaviour the paper reports."""

    def test_trans_loop_transform_useless(self):
        p = build_workload("trans", 16)
        cfg = build_version("l-opt", p)
        # no loop transformation can optimize both refs: identity survives
        from repro.linalg import IMat

        for t in cfg.decision.transforms.values():
            pass  # any choice is as good; the real check is cost parity
        # layouts, however, fix everything
        d = build_version("d-opt", p)
        layouts = d.decision.layouts
        assert layouts["B"] == (1, 0)  # row-major for B(i,j)
        assert layouts["A"] == (0, 1)  # column-major for A(j,i)

    def test_vpenta_lopt_cannot_fix_all_refs(self):
        """No loop order serves every reference of a vpenta nest against
        fixed column-major layouts (the reason l-opt stalls)."""
        from repro.optimizer.cost import access_is_spatial

        p = build_workload("vpenta", 12)
        cfg = build_version("l-opt", p)
        col_dir = (1, 0)
        bad = 0
        for nest in cfg.program.nests:
            q_last = tuple(
                1 if i == nest.depth - 1 else 0 for i in range(nest.depth)
            )
            for _, ref, _ in nest.refs():
                if ref.rank < 2:
                    continue
                l = nest.access_matrix(ref)
                d = col_dir if ref.rank == 2 else (1, 0, 0)
                if not access_is_spatial(l, q_last, d):
                    bad += 1
        assert bad > 0

    def test_vpenta_dopt_fixes_all_refs(self):
        from repro.optimizer.cost import access_is_spatial

        p = build_workload("vpenta", 12)
        cfg = build_version("d-opt", p)
        dirs = cfg.decision.directions
        assert dirs["X"] == (0, 1)  # row-major for the row-walked arrays
        assert dirs["B"] == (1, 0)  # column-major for the transposed read
        for nest in cfg.program.nests:
            q_last = tuple(
                1 if i == nest.depth - 1 else 0 for i in range(nest.depth)
            )
            for _, ref, _ in nest.refs():
                if ref.rank < 2:
                    continue
                l = nest.access_matrix(ref)
                assert access_is_spatial(
                    l, q_last, dirs.get(ref.array.name)
                ), f"{nest.name}:{ref}"

    def test_adi_lopt_transforms_sweeps(self):
        from repro.linalg import IMat

        p = build_workload("adi", 12)
        cfg = build_version("l-opt", p)
        transforms = cfg.decision.transforms
        assert any(
            t != IMat.identity(t.nrows) for t in transforms.values()
        ), "adi's x-sweep should be interchanged by l-opt"

    def test_gfunp_copt_optimizes_all_refs(self):
        from repro.optimizer.cost import access_is_spatial

        p = build_workload("gfunp", 12)
        cfg = build_version("c-opt", p)
        decision = cfg.decision
        unopt = []
        for nest in decision.program.nests:
            q_last = tuple(
                1 if i == nest.depth - 1 else 0 for i in range(nest.depth)
            )
            for _, ref, _ in nest.refs():
                if ref.rank < 2:
                    continue
                l = nest.access_matrix(ref)
                if not access_is_spatial(
                    l, q_last, decision.directions.get(ref.array.name)
                ):
                    unopt.append(f"{nest.name}:{ref}")
        assert not unopt, unopt

    def test_emit_col_already_optimal(self):
        from repro.optimizer.cost import access_is_spatial

        p = build_workload("emit", 12)
        # emit under col-major: every 3-D ref is spatial with i innermost
        cfg = build_version("col", p)
        for nest in cfg.program.nests:
            q_last = tuple(
                1 if i == nest.depth - 1 else 0 for i in range(nest.depth)
            )
            for _, ref, _ in nest.refs():
                if ref.rank != 3:
                    continue
                l = nest.access_matrix(ref)
                assert access_is_spatial(l, q_last, (1, 0, 0))
