"""Per-code optimization-behaviour tests for the codes not covered in
test_workloads.py — each asserts the structural property behind its
Table 2 row."""

import pytest

from repro.dependence import analyze_nest, transform_is_legal
from repro.linalg import IMat
from repro.optimizer import build_version, optimize_program
from repro.optimizer.cost import access_is_spatial
from repro.transforms import normalize_program
from repro.workloads import build_workload


def innermost_q(nest):
    return tuple(1 if i == nest.depth - 1 else 0 for i in range(nest.depth))


def unoptimized_refs(program, directions):
    out = []
    for nest in program.nests:
        q = innermost_q(nest)
        for _, ref, _ in nest.refs():
            if ref.rank < 2:
                continue
            l = nest.access_matrix(ref)
            if not access_is_spatial(l, q, directions.get(ref.array.name)):
                out.append(f"{nest.name}:{ref}")
    return out


class TestMat:
    def test_copt_fixes_everything(self):
        cfg = build_version("c-opt", build_workload("mat", 12))
        assert unoptimized_refs(cfg.program, cfg.decision.directions) == []

    def test_kernel_nest_transformed_or_relayouted(self):
        """Under fixed col-major, the ijk kernel needs i innermost."""
        cfg = build_version("l-opt", build_workload("mat", 12))
        mm = cfg.decision.transforms["mat.mm"]
        assert mm != IMat.identity(3)


class TestMxm:
    def test_col_already_optimal(self):
        p = build_workload("mxm", 12)
        col_dirs = {"A": (1, 0), "B": (1, 0), "C": (1, 0)}
        norm = normalize_program(p)
        assert unoptimized_refs(norm, col_dirs) == []

    def test_lopt_keeps_identity(self):
        cfg = build_version("l-opt", build_workload("mxm", 12))
        for name, t in cfg.decision.transforms.items():
            assert t == IMat.identity(t.nrows), name

    def test_dopt_chooses_col_directions(self):
        cfg = build_version("d-opt", build_workload("mxm", 12))
        for arr, d in cfg.decision.directions.items():
            assert d == (1, 0), (arr, d)


class TestBtrix:
    def test_no_single_layout_fits_all(self):
        p = normalize_program(build_workload("btrix", 12))
        row_dirs = {a.name: (0, 1, 0, 0) for a in p.arrays if a.rank == 4}
        col_dirs = {a.name: (1, 0, 0, 0) for a in p.arrays if a.rank == 4}
        assert unoptimized_refs(p, row_dirs)  # ED breaks under row
        assert unoptimized_refs(p, col_dirs)  # EA/EB/EC break under col

    def test_dopt_fixes_all_4d_refs(self):
        cfg = build_version("d-opt", build_workload("btrix", 12))
        dirs = cfg.decision.directions
        assert dirs["EA"] == (0, 1, 0, 0)
        assert dirs["ED"] == (1, 0, 0, 0)
        assert unoptimized_refs(cfg.program, dirs) == []

    def test_skew_blocks_interchange(self):
        p = normalize_program(build_workload("btrix", 12))
        fwd = p.nest("btrix.fwd")
        edges = analyze_nest(fwd)
        interchange = IMat([[0, 1], [1, 0]])
        assert not transform_is_legal(interchange, edges)


class TestSyr2k:
    def test_lopt_gains_temporal_locality(self):
        """i innermost makes A(j,k)/B(j,k) loop-invariant — the reuse no
        layout can provide."""
        cfg = build_version("l-opt", build_workload("syr2k", 12))
        upd = cfg.program.nest("syr2k.upd")
        q = innermost_q(upd)
        temporal = 0
        for _, ref, _ in upd.refs():
            if ref.rank == 2 and not any(upd.access_matrix(ref).matvec(q)):
                temporal += 1
        assert temporal >= 2

    def test_triangular_bounds_survive_transform(self):
        cfg = build_version("l-opt", build_workload("syr2k", 8))
        upd = cfg.program.nest("syr2k.upd")
        pts = list(upd.iterate({"N": 8}))
        # the triangle has N(N+1)/2 * N points
        assert len(pts) == 8 * 9 // 2 * 8


class TestHtribk:
    def test_combined_at_least_as_good_as_pure(self):
        from repro.experiments.harness import ExperimentSettings, normalize_row, run_table2_row

        settings = ExperimentSettings(n=48)
        r = normalize_row(run_table2_row("htribk", settings))
        assert r["c-opt"] <= r["d-opt"] * 1.02
        assert r["c-opt"] <= 100

    def test_accumulation_nest_dominates_cost(self):
        from repro.optimizer import nest_cost

        p = normalize_program(build_workload("htribk", 12))
        costs = {n.name: nest_cost(n, p.binding()) for n in p.nests}
        assert max(costs, key=costs.get) == "htribk.accum"


class TestTransExtra:
    def test_no_permutation_fixes_both_under_fixed_axis_layouts(self):
        """With axis-aligned layouts fixed (the l-opt setting), no loop
        *permutation* serves both references — their directions stay
        orthogonal for every elementary innermost choice."""
        from repro.linalg import primitive

        p = normalize_program(build_workload("trans", 8))
        nest = p.nests[0]
        refs = [r for _, r, _ in nest.refs()]
        for q in [(0, 1), (1, 0)]:
            dirs = [
                primitive(nest.access_matrix(r).matvec(q)) for r in refs
            ]
            assert dirs[0] != dirs[1], q

    def test_skewed_inner_direction_would_unify(self):
        """...but the framework's full generality could: a skewed
        innermost direction (1,1) gives BOTH references the anti-diagonal
        fast direction, so diagonal layouts + loop skewing is an
        alternative optimum (the per-array axis layouts c-opt picks are
        equally good and simpler)."""
        from repro.linalg import primitive

        p = normalize_program(build_workload("trans", 8))
        nest = p.nests[0]
        refs = [r for _, r, _ in nest.refs()]
        dirs = {
            primitive(nest.access_matrix(r).matvec((1, 1))) for r in refs
        }
        assert dirs == {(1, 1)}
