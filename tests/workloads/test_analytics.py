"""The big-array analytics family: registry separation, numerics, and
the per-stage layout win the backend benchmarks rely on."""

import numpy as np
import pytest

from repro.engine import OOCExecutor
from repro.optimizer import build_version
from repro.workloads import (
    ANALYTICS,
    WORKLOADS,
    analytics_names,
    build_analytics,
    build_workload,
)
from repro.workloads.pipeline import QUERY_ITERS
from repro.workloads.window import W

N = 12


def _run(name, version="c-opt", n=N):
    cfg = build_version(version, build_analytics(name, n))
    ex = OOCExecutor(
        cfg.program, cfg.layouts, tiling=cfg.tiling,
        storage_spec=cfg.storage_spec,
    )
    result = ex.run()
    arrays = {a.name: ex.array_data(a.name) for a in cfg.program.arrays}
    return result, arrays


class TestRegistry:
    def test_separate_from_paper_workloads(self):
        assert analytics_names() == ["window", "ajoin", "pipeline"]
        assert len(WORKLOADS) == 10
        assert not set(ANALYTICS) & set(WORKLOADS)

    def test_meta_fields(self):
        for meta in ANALYTICS.values():
            assert meta.source == "analytics"
            assert meta.iters >= 1

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            build_analytics("mxm")  # paper kernels live in WORKLOADS
        with pytest.raises(KeyError):
            build_workload("window")

    @pytest.mark.parametrize("name", ["window", "ajoin", "pipeline"])
    def test_programs_build_and_bind(self, name):
        prog = build_analytics(name, 16)
        assert dict(prog.default_binding)["N"] == 16
        assert len(prog.nests) >= 2


class TestNumerics:
    """Contents equal a straightforward numpy evaluation (1-based
    Fortran-style bounds → slice arithmetic below)."""

    def test_window_is_sliding_sum(self):
        _, arrays = _run("window")
        A, S = arrays["A"], arrays["S"]
        expected = np.zeros_like(S)
        for k in range(W):
            expected[:, : N - W + 1] += A[:, k: N - W + 1 + k]
        np.testing.assert_allclose(S, expected)

    def test_ajoin_is_transposed_product_with_colsum(self):
        _, arrays = _run("ajoin")
        A, B, C, D = arrays["A"], arrays["B"], arrays["C"], arrays["D"]
        np.testing.assert_allclose(C, A * B.T)
        np.testing.assert_allclose(D, C.sum(axis=0))

    def test_pipeline_three_stages(self):
        _, arrays = _run("pipeline")
        A = arrays["A"]
        t1 = 3.0 * A
        t2 = t1.T
        expected = np.zeros_like(A)
        for k in range(W):
            expected[:, : N - W + 1] += t2[:, k: N - W + 1 + k]
        np.testing.assert_allclose(arrays["T1"], t1)
        np.testing.assert_allclose(arrays["T2"], t2)
        # nest repetition semantics: the init nest's repetitions all
        # zero S, then the window nest's QUERY_ITERS repetitions each
        # accumulate one full window sum
        np.testing.assert_allclose(arrays["S"], QUERY_ITERS * expected)


class TestPipelineLayoutWin:
    def test_query_iters_weighting(self):
        prog = build_analytics("pipeline", N)
        weights = {n.name: n.weight for n in prog.nests}
        assert weights["pipe.scale"] == 1
        assert weights["pipe.transpose"] == QUERY_ITERS

    def test_per_stage_layouts_beat_fixed(self):
        io = {}
        for ver in ("row", "d-opt", "c-opt"):
            result, _ = _run("pipeline", version=ver, n=16)
            io[ver] = result.stats.io_time_s
        assert io["d-opt"] < io["row"]
        assert io["c-opt"] < io["row"]

    def test_versions_agree_on_contents(self):
        _, fixed = _run("pipeline", version="row", n=16)
        _, tuned = _run("pipeline", version="c-opt", n=16)
        for name in fixed:
            np.testing.assert_allclose(tuned[name], fixed[name])
