"""FaultInjector unit semantics: the serial pricing path and the event
records, independent of the executor."""

import pytest

from repro.faults import (
    FaultConfig,
    FaultInjector,
    FaultPlan,
    ResiliencePolicy,
    TransientIOError,
)

N_IO = 4


def _call(inj, io_node=0, is_write=False, service_s=1.0):
    return inj.serial_call(
        io_node, is_write, service_s, n_io_nodes=N_IO, at_s=0.0
    )


class TestSerialCall:
    def test_nominal_call_untouched(self):
        inj = FaultInjector(FaultPlan(seed=1))
        out = _call(inj)
        assert out.attempts == 1 and out.failed_attempts == 0
        assert out.io_time_s == pytest.approx(1.0)
        assert out.retry_delay_s == 0.0
        assert not out.hedged and not out.gave_up
        assert inj.events == []

    def test_straggler_multiplies_service(self):
        inj = FaultInjector(FaultPlan(stragglers={2: 4.0}))
        assert _call(inj, io_node=2).io_time_s == pytest.approx(4.0)
        assert _call(inj, io_node=1).io_time_s == pytest.approx(1.0)

    def test_scheduled_error_then_retry(self):
        pol = ResiliencePolicy(max_retries=2, backoff_base_s=0.5)
        inj = FaultInjector(FaultPlan(error_ops={0}), pol)
        out = _call(inj)
        assert out.attempts == 2 and out.failed_attempts == 1
        assert out.retries == 1
        assert out.io_time_s == pytest.approx(2.0)   # both attempts ran
        assert out.retry_delay_s == pytest.approx(0.5)
        assert [e.kind for e in inj.events] == ["error", "retry"]

    def test_retry_budget_exhausted_gives_up(self):
        # ops 0..2 fail deterministically; max_retries=1 allows 2 attempts
        inj = FaultInjector(
            FaultPlan(error_ops={0, 1, 2}), ResiliencePolicy(max_retries=1)
        )
        out = _call(inj)
        assert out.gave_up and out.attempts == 2
        assert inj.events[-1].kind == "gave_up"
        with pytest.raises(TransientIOError) as ei:
            inj.raise_exhausted(out, io_node=0)
        assert ei.value.attempts == 2
        assert ei.value.io_node == 0

    def test_timeout_counts_as_failure_and_caps_attempt(self):
        pol = ResiliencePolicy(max_retries=0, timeout_s=0.25)
        inj = FaultInjector(FaultPlan(stragglers={0: 8.0}), pol)
        out = _call(inj, io_node=0, service_s=0.1)   # 0.8s > timeout
        assert out.gave_up
        assert out.io_time_s == pytest.approx(0.25)  # abandoned at timeout
        assert inj.events[0].kind == "timeout"

    def test_hedged_read_waits_nominal_service(self):
        pol = ResiliencePolicy(hedge_reads=True, hedge_threshold=2.0)
        inj = FaultInjector(FaultPlan(stragglers={3: 8.0}), pol)
        out = _call(inj, io_node=3, service_s=0.5)
        assert out.hedged and out.hedge_node == 0    # (3 + 1) % 4
        assert out.io_time_s == pytest.approx(0.5)   # replica's nominal time
        assert inj.hedged_calls == 1
        assert [e.kind for e in inj.events] == ["hedge"]
        # a write on the same straggler is never hedged
        out_w = _call(inj, io_node=3, is_write=True, service_s=0.5)
        assert not out_w.hedged
        assert out_w.io_time_s == pytest.approx(4.0)

    def test_probabilistic_draws_deterministic_per_seed(self):
        plan = FaultPlan(seed=13, read_error_rate=0.3)
        pol = ResiliencePolicy(max_retries=10)

        def trace(rank):
            inj = FaultInjector(plan, pol, rank=rank)
            return [_call(inj).attempts for _ in range(50)]

        assert trace(0) == trace(0)                  # reproducible
        assert trace(0) != trace(1)                  # per-rank streams
        assert any(a > 1 for a in trace(0))          # errors actually fire

    def test_rate_zero_never_draws_rng(self):
        # the RNG must not advance on fault-free calls, so adding calls
        # before a scheduled op cannot shift later probabilistic draws
        inj = FaultInjector(FaultPlan(seed=5))
        state = inj._rng.getstate()
        for _ in range(10):
            _call(inj)
        assert inj._rng.getstate() == state

    def test_op_index_counts_attempts(self):
        inj = FaultInjector(
            FaultPlan(error_ops={1}), ResiliencePolicy(max_retries=1)
        )
        _call(inj)            # op 0: clean
        out = _call(inj)      # ops 1 (fails) + 2 (retry)
        assert out.attempts == 2
        assert inj.op_index == 3


class TestSimHooks:
    def test_sim_defer_and_events(self):
        from repro.faults import Outage

        inj = FaultInjector(FaultPlan(outages=(Outage(0, 1.0, 2.0),)))
        assert inj.sim_defer(0, 1.5) == pytest.approx(2.0)
        assert inj.sim_defer(0, 0.5) == pytest.approx(0.5)
        assert inj.sim_defer(1, 1.5) == pytest.approx(1.5)
        assert [e.kind for e in inj.events] == ["outage"]

    def test_sim_error_counts(self):
        inj = FaultInjector(FaultPlan(error_ops={0}))
        assert inj.sim_error(2, False, 0.0) is True
        assert inj.sim_error(2, False, 0.0) is False
        assert inj.injected == 1
        assert inj.events[0].kind == "error" and inj.events[0].io_node == 2

    def test_sim_give_up_raises(self):
        inj = FaultInjector(FaultPlan(), ResiliencePolicy(max_retries=1))
        with pytest.raises(TransientIOError):
            inj.sim_give_up(3, False, 1.0, attempts=2)
        assert inj.events[-1].kind == "gave_up"

    def test_sim_retry_delay_accumulates(self):
        inj = FaultInjector(
            FaultPlan(), ResiliencePolicy(max_retries=2, backoff_base_s=0.1)
        )
        d1 = inj.sim_retry_delay(1, 0.0)
        d2 = inj.sim_retry_delay(2, 1.0)
        assert (d1, d2) == (pytest.approx(0.1), pytest.approx(0.2))
        assert inj.retries == 2
        assert inj.retry_delay_s == pytest.approx(0.3)


class TestConfigAndMetrics:
    def test_config_builds_rank_seeded_injectors(self):
        cfg = FaultConfig(FaultPlan(seed=9, read_error_rate=0.5))
        a, b = cfg.injector(0), cfg.injector(1)
        assert a.rank == 0 and b.rank == 1
        assert a.plan is cfg.plan and a.policy is cfg.policy

    def test_publish_metrics(self):
        from repro.obs import MetricsRegistry

        inj = FaultInjector(
            FaultPlan(error_ops={0}), ResiliencePolicy(max_retries=1),
            rank=2,
        )
        _call(inj)
        reg = MetricsRegistry()
        inj.publish_metrics(reg)
        assert reg.gauge("faults.injected", rank=2).value == 1
        assert reg.gauge("faults.retries", rank=2).value == 1

    def test_record_events_off(self):
        inj = FaultInjector(
            FaultPlan(error_ops={0}), ResiliencePolicy(max_retries=1),
            record_events=False,
        )
        out = _call(inj)
        assert out.retries == 1
        assert inj.events is None
