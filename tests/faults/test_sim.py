"""Event-simulator fault semantics and determinism (satellite of the
repro.faults subsystem): same seed + plan => identical event lists,
different seeds => different injections; outages defer, windows
multiply, failed requests retry after backoff."""

import pytest

from repro.collective.sim import NodeTimeline, SimOp, simulate
from repro.faults import (
    FaultInjector,
    FaultPlan,
    LatencyWindow,
    Outage,
    ResiliencePolicy,
    TransientIOError,
)
from repro.runtime import MachineParams

PARAMS = MachineParams(n_io_nodes=2)


def _timelines(n_nodes=2, n_ops=8, service_s=1.0):
    """n_nodes nodes alternating compute and io over both I/O nodes."""
    tls = []
    for node in range(n_nodes):
        ops = []
        for k in range(n_ops):
            ops.append(SimOp("compute", duration_s=0.25))
            ops.append(
                SimOp(
                    "io",
                    resource=(node + k) % PARAMS.n_io_nodes,
                    service_s=service_s,
                    is_write=k % 2 == 1,
                )
            )
        tls.append(NodeTimeline(node, ops))
    return tls


def _run(plan, policy=None, seed_events=True):
    inj = FaultInjector(plan, policy, record_events=seed_events)
    events = []
    res = simulate(PARAMS, _timelines(), events=events, faults=inj)
    return res, events, inj


class TestDeterminism:
    def test_same_seed_same_events(self):
        plan = FaultPlan(
            seed=21,
            read_error_rate=0.2,
            write_error_rate=0.1,
            stragglers={0: 2.0},
            latency_windows=(LatencyWindow(1, 2.0, 5.0, 3.0),),
            outages=(Outage(0, 1.0, 2.5),),
        )
        pol = ResiliencePolicy(max_retries=8, backoff_base_s=0.05)
        r1, e1, i1 = _run(plan, pol)
        r2, e2, i2 = _run(plan, pol)
        assert e1 == e2                       # SimEvent is a frozen dataclass
        assert [
            (f.kind, f.op_index, f.io_node, f.time_s) for f in i1.events
        ] == [
            (f.kind, f.op_index, f.io_node, f.time_s) for f in i2.events
        ]
        assert r1.makespan_s == r2.makespan_s
        assert (r1.faults_injected, r1.fault_retries, r1.fault_retry_delay_s) \
            == (r2.faults_injected, r2.fault_retries, r2.fault_retry_delay_s)
        assert r1.faults_injected > 0         # the scenario actually fires

    @pytest.mark.parametrize("other_seed", [1, 2, 3])
    def test_different_seeds_differ(self, other_seed):
        pol = ResiliencePolicy(max_retries=16, backoff_base_s=0.05)

        def fingerprint(seed):
            plan = FaultPlan(seed=seed, read_error_rate=0.4,
                             write_error_rate=0.4)
            res, events, inj = _run(plan, pol)
            return (res.faults_injected,
                    [f.op_index for f in inj.events if f.kind == "error"])

        assert fingerprint(0) != fingerprint(other_seed)

    def test_empty_plan_matches_no_injector(self):
        base = simulate(PARAMS, _timelines())
        res, events, inj = _run(FaultPlan(seed=4))
        assert res.makespan_s == base.makespan_s
        assert list(res.io_busy_s) == list(base.io_busy_s)
        assert res.node_finish_s == base.node_finish_s
        assert (res.faults_injected, res.fault_retries) == (0, 0)
        assert inj.events == []

    def test_faults_none_unchanged_across_runs(self):
        a = simulate(PARAMS, _timelines())
        b = simulate(PARAMS, _timelines())
        assert a.makespan_s == b.makespan_s
        assert a.n_events == b.n_events
        assert (a.faults_injected, a.fault_retries, a.fault_retry_delay_s) \
            == (0, 0, 0.0)


class TestTimeIndexedFaults:
    def test_outage_defers_start(self):
        tl = [NodeTimeline(0, [SimOp("io", resource=0, service_s=1.0)])]
        inj = FaultInjector(FaultPlan(outages=(Outage(0, 0.0, 5.0),)))
        events = []
        res = simulate(PARAMS, tl, events=events, faults=inj)
        assert events[0].start_s == pytest.approx(5.0)
        assert res.makespan_s == pytest.approx(6.0)
        assert res.waited_requests == 1
        assert inj.events[0].kind == "outage"

    def test_window_multiplies_service(self):
        tl = [NodeTimeline(0, [SimOp("io", resource=1, service_s=1.0)])]
        inj = FaultInjector(
            FaultPlan(latency_windows=(LatencyWindow(1, 0.0, 10.0, 4.0),))
        )
        res = simulate(PARAMS, tl, events=None, faults=inj)
        assert res.makespan_s == pytest.approx(4.0)
        assert res.io_busy_s[1] == pytest.approx(4.0)

    def test_window_outside_start_inert(self):
        tl = [NodeTimeline(0, [SimOp("io", resource=1, service_s=1.0)])]
        inj = FaultInjector(
            FaultPlan(latency_windows=(LatencyWindow(1, 5.0, 10.0, 4.0),))
        )
        res = simulate(PARAMS, tl, faults=inj)
        assert res.makespan_s == pytest.approx(1.0)


class TestSimRetries:
    def test_scheduled_error_retries_and_extends_makespan(self):
        tl = [NodeTimeline(0, [SimOp("io", resource=0, service_s=1.0)])]
        pol = ResiliencePolicy(max_retries=2, backoff_base_s=0.5)
        inj = FaultInjector(FaultPlan(error_ops={0}), pol)
        events = []
        res = simulate(PARAMS, tl, events=events, faults=inj)
        # attempt 0 fails at t=1, backoff 0.5, attempt at t=1.5 succeeds
        assert res.makespan_s == pytest.approx(2.5)
        assert res.fault_retries == 1
        assert res.fault_retry_delay_s == pytest.approx(0.5)
        assert res.io_busy_s[0] == pytest.approx(2.0)  # both attempts served
        assert events[0].end_s == pytest.approx(2.5)
        assert [f.kind for f in inj.events] == ["error", "retry"]

    def test_retry_budget_exhausted_raises(self):
        tl = [NodeTimeline(0, [SimOp("io", resource=0, service_s=1.0)])]
        inj = FaultInjector(
            FaultPlan(error_ops={0, 1}), ResiliencePolicy(max_retries=1)
        )
        with pytest.raises(TransientIOError) as ei:
            simulate(PARAMS, tl, faults=inj)
        assert ei.value.io_node == 0
        assert ei.value.attempts == 2
        assert inj.events[-1].kind == "gave_up"

    def test_no_policy_dies_on_first_error(self):
        tl = [NodeTimeline(0, [SimOp("io", resource=1, service_s=1.0)])]
        inj = FaultInjector(FaultPlan(error_ops={0}))
        with pytest.raises(TransientIOError):
            simulate(PARAMS, tl, faults=inj)

    def test_retry_queues_behind_other_traffic(self):
        # node 1's request lands between node 0's failed attempt and its
        # retry: FIFO order puts the retry after it
        tl = [
            NodeTimeline(0, [SimOp("io", resource=0, service_s=1.0)]),
            NodeTimeline(
                1,
                [
                    SimOp("compute", duration_s=0.5),
                    SimOp("io", resource=0, service_s=1.0),
                ],
            ),
        ]
        pol = ResiliencePolicy(max_retries=1, backoff_base_s=0.5)
        inj = FaultInjector(FaultPlan(error_ops={0}), pol)
        res = simulate(PARAMS, tl, faults=inj)
        # node0: attempt [0,1] fails, backoff to 1.5; node1 queued at
        # arrival 0.5 starts when the I/O node frees... the retry waits
        # for io_free, so the schedule stays consistent either way —
        # just assert both nodes finish and totals add up
        assert res.fault_retries == 1
        assert res.io_busy_s[0] == pytest.approx(3.0)   # 2 attempts + node1
        assert res.makespan_s >= 2.5
