"""The fault subsystem wired through the whole stack.

Three contracts, on the same workloads the obs suite pins (adi/mxm at
N=24, 4 nodes, 4 I/O nodes):

- **off is bit-identical** — ``faults=None`` (and the default of not
  passing ``faults`` at all) produces byte-equal stats lines and
  serialized dicts on all three execution paths;
- **on is deterministic and exact** — the same plan+seed reproduces the
  run bit-for-bit, every failed attempt is retried exactly once per
  ``retries`` counter, and the observability report still cross-checks
  against the folded stats *exactly* under injected faults;
- **the acceptance scenario holds** — a seeded straggler costs the
  no-policy run >=2x and hedged reads recover >=50% of the loss.
"""

import json

import pytest

from dataclasses import replace

from repro.cache import CacheConfig
from repro.engine import OOCExecutor
from repro.experiments.harness import _scaled_params
from repro.faults import (
    FaultConfig,
    FaultPlan,
    ResiliencePolicy,
    TransientIOError,
)
from repro.obs import Observability, report_totals
from repro.optimizer import build_version
from repro.parallel import CollectiveConfig, run_version_parallel
from repro.workloads import build_workload

N = 24
PARAMS = replace(_scaled_params(N), n_io_nodes=4)
N_NODES = 4
SEED = 7

RETRY = ResiliencePolicy(max_retries=4)


def _cfg(workload, version="c-opt"):
    return build_version(version, build_workload(workload, N))


def _stats_fields(stats):
    return (
        stats.read_calls, stats.write_calls,
        stats.elements_read, stats.elements_written,
        stats.io_time_s, stats.compute_time_s,
        stats.redist_messages, stats.redist_elements, stats.redist_time_s,
        stats.retries, stats.failed_calls, stats.hedged_calls,
        stats.degraded_nests, stats.retry_delay_s,
    )


def _run(workload, *, version="c-opt", collective=None, obs=None,
         faults=None):
    return run_version_parallel(
        _cfg(workload, version), N_NODES, params=PARAMS,
        collective=collective, obs=obs, faults=faults,
    )


def _executor(workload="adi", **kw):
    cfg = _cfg(workload)
    return OOCExecutor(
        cfg.program, cfg.layouts, params=PARAMS, tiling=cfg.tiling,
        storage_spec=cfg.storage_spec, real=False, **kw,
    )


class TestOffBitIdentical:
    """Acceptance gate: ``faults=None`` leaves the stats line and the
    serialized dict byte-identical to not mentioning faults at all —
    independent, collective and direct-executor paths alike."""

    @pytest.mark.parametrize("workload", ["adi", "mxm"])
    def test_independent_parallel(self, workload):
        base = _run(workload)
        off = _run(workload, faults=None)
        assert _stats_fields(off.total_stats) == _stats_fields(
            base.total_stats
        )
        assert str(off.total_stats) == str(base.total_stats)
        assert json.dumps(off.total_stats.to_dict()) == json.dumps(
            base.total_stats.to_dict()
        )
        assert off.time_s == base.time_s

    @pytest.mark.parametrize("workload", ["adi", "mxm"])
    def test_collective_parallel(self, workload):
        coll = CollectiveConfig(mode="auto")
        base = _run(workload, collective=coll)
        off = _run(workload, collective=coll, faults=None)
        assert _stats_fields(off.total_stats) == _stats_fields(
            base.total_stats
        )
        assert str(off.total_stats) == str(base.total_stats)
        assert json.dumps(off.total_stats.to_dict()) == json.dumps(
            base.total_stats.to_dict()
        )
        assert off.time_s == base.time_s

    def test_direct_executor(self):
        base = _executor().run()
        off = _executor(faults=None).run()
        assert _stats_fields(off.stats) == _stats_fields(base.stats)
        assert str(off.stats) == str(base.stats)
        assert json.dumps(off.stats.to_dict()) == json.dumps(
            base.stats.to_dict()
        )

    def test_off_serialization_carries_no_fault_keys(self):
        s = _run("adi").total_stats
        assert not s.has_faults
        d = s.to_dict()
        assert "retries" not in d and "failed_calls" not in d
        assert "faults[" not in str(s)


class TestErrorInjection:
    def test_no_policy_aborts_deterministically(self):
        plan = FaultPlan(seed=SEED, read_error_rate=0.02,
                         write_error_rate=0.02)

        def fail_op():
            with pytest.raises(TransientIOError) as ei:
                _run("adi", faults=FaultConfig(plan))
            return (ei.value.op_index, ei.value.io_node)

        assert fail_op() == fail_op()

    @pytest.mark.parametrize("workload", ["adi", "mxm"])
    def test_retry_policy_completes_and_accounts(self, workload):
        plan = FaultPlan(seed=SEED, read_error_rate=0.02,
                         write_error_rate=0.02)
        run = _run(workload, faults=FaultConfig(plan, RETRY))
        s = run.total_stats
        assert s.has_faults
        assert s.retries > 0
        assert s.retries == s.failed_calls   # each failure retried once
        assert s.retry_delay_s > 0.0
        assert "faults[" in str(s)
        # serialization round-trips the fault counters exactly
        from repro.runtime import IOStats

        back = IOStats.from_dict(json.loads(json.dumps(s.to_dict())))
        assert _stats_fields(back) == _stats_fields(s)

    def test_same_plan_same_run(self):
        faults = FaultConfig(
            FaultPlan(seed=SEED, read_error_rate=0.02), RETRY
        )
        a = _run("adi", faults=faults)
        b = _run("adi", faults=faults)
        assert _stats_fields(a.total_stats) == _stats_fields(b.total_stats)
        assert a.time_s == b.time_s

    def test_different_seeds_differ(self):
        def fingerprint(seed):
            run = _run(
                "adi",
                faults=FaultConfig(
                    FaultPlan(seed=seed, read_error_rate=0.05), RETRY
                ),
            )
            return _stats_fields(run.total_stats)

        assert any(fingerprint(0) != fingerprint(s) for s in (1, 2, 3))

    def test_retry_delay_extends_makespan(self):
        nominal = _run(
            "adi", faults=FaultConfig(FaultPlan(seed=SEED))
        )
        faulted = _run(
            "adi",
            faults=FaultConfig(
                FaultPlan(seed=SEED, read_error_rate=0.05),
                ResiliencePolicy(max_retries=8, backoff_base_s=0.05),
            ),
        )
        assert faulted.time_s > nominal.time_s


class TestStragglerHedging:
    """The bench_faults acceptance scenario, pinned as a test: an 8x
    straggler I/O node costs >=2x makespan without a policy and hedged
    reads recover >=50% of the loss.  The fault-free reference keeps the
    injector active on an empty plan: an injector forces per-call
    execution (weighted nests run their repetitions), so this is the
    apples-to-apples denominator."""

    def test_mxm_straggler_recovery(self):
        cfg = _cfg("mxm")
        free = run_version_parallel(
            cfg, N_NODES, params=PARAMS,
            faults=FaultConfig(FaultPlan(seed=SEED)),
        )
        plan = FaultPlan(seed=SEED, stragglers={0: 8.0})
        nopol = run_version_parallel(
            cfg, N_NODES, params=PARAMS, faults=FaultConfig(plan)
        )
        hedged = run_version_parallel(
            cfg, N_NODES, params=PARAMS,
            faults=FaultConfig(
                plan,
                ResiliencePolicy(hedge_reads=True, hedge_threshold=2.0),
            ),
        )
        regression = nopol.time_s / free.time_s
        recovered = (nopol.time_s - hedged.time_s) / (
            nopol.time_s - free.time_s
        )
        assert regression >= 2.0
        assert recovered >= 0.5
        assert hedged.total_stats.hedged_calls > 0
        assert nopol.total_stats.hedged_calls == 0


class TestDegradation:
    """A two-phase nest whose aggregator rank is failed falls back to
    independent I/O (and says so), unless the policy opts out."""

    COLL = CollectiveConfig(mode="always")

    def _collective_nests(self):
        run = _run("adi", version="col", collective=self.COLL)
        return [n for n, chosen in run.collective.chosen.items() if chosen]

    def test_failed_aggregator_degrades(self):
        assert self._collective_nests(), "scenario needs a two-phase nest"
        # failing every rank guarantees hitting each nest's aggregators
        faults = FaultConfig(FaultPlan(failed_nodes=range(N_NODES)))
        run = _run("adi", version="col", collective=self.COLL, faults=faults)
        assert run.collective.degraded
        assert run.total_stats.degraded_nests == len(run.collective.degraded)
        for nest in run.collective.degraded:
            assert run.collective.chosen[nest] is False

    def test_degrade_opt_out_is_inert(self):
        faults = FaultConfig(
            FaultPlan(failed_nodes=range(N_NODES)),
            ResiliencePolicy(degrade_collective=False),
        )
        run = _run("adi", version="col", collective=self.COLL, faults=faults)
        assert run.collective.degraded == []
        assert run.total_stats.degraded_nests == 0
        assert any(run.collective.chosen.values())


class TestMemoryRelease:
    """Satellite: a read that fails mid-nest must not leak the tile
    footprint — the budget is fully released when the error propagates."""

    def test_plain_path_releases_on_failure(self):
        ex = _executor(faults=FaultConfig(FaultPlan(error_ops={0})))
        with pytest.raises(TransientIOError):
            ex.run()
        assert ex.memory.in_use == 0

    def test_cached_path_releases_on_failure(self):
        ex = _executor(
            cache=CacheConfig(),
            faults=FaultConfig(FaultPlan(error_ops={0})),
        )
        with pytest.raises(TransientIOError):
            ex.run()
        assert ex.memory.in_use == 0

    def test_clean_run_still_balances(self):
        ex = _executor(faults=FaultConfig(FaultPlan(seed=SEED), RETRY))
        ex.run()
        assert ex.memory.in_use == 0
        assert ex.memory.peak > 0


class TestObservabilityUnderFaults:
    def _faulty_obs_run(self):
        obs = Observability()
        run = _run(
            "adi", obs=obs,
            faults=FaultConfig(
                FaultPlan(seed=SEED, read_error_rate=0.02,
                          stragglers={0: 4.0}),
                ResiliencePolicy(max_retries=4, hedge_reads=True),
            ),
        )
        return obs, run

    def test_report_totals_exact_under_faults(self):
        obs, run = self._faulty_obs_run()
        totals = report_totals(obs.report.records)
        s = run.total_stats
        assert s.retries > 0 and s.hedged_calls > 0
        assert totals["read_calls"] == s.read_calls
        assert totals["write_calls"] == s.write_calls
        assert totals["elements_read"] == s.elements_read
        assert totals["elements_written"] == s.elements_written

    def test_fault_metrics_match_stats(self):
        obs, run = self._faulty_obs_run()
        s = run.total_stats
        assert obs.metrics.counter("faults.retries").value == s.retries
        assert obs.metrics.counter("faults.injected").value == s.failed_calls
        assert (
            obs.metrics.counter("faults.hedged_calls").value
            == s.hedged_calls
        )

    def test_fault_events_on_their_own_track(self):
        obs, run = self._faulty_obs_run()
        fault_spans = [
            sp for sp in obs.tracer.virtual_spans if sp.track == "faults"
        ]
        assert fault_spans
        kinds = {sp.cat for sp in fault_spans}
        assert "fault.error" in kinds or "fault.retry" in kinds

    def test_rendered_report_has_resilience_section(self, tmp_path, capsys):
        from repro.obs.cli import main

        obs, run = self._faulty_obs_run()
        path = tmp_path / "trace.json"
        obs.export(str(path))
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        s = run.total_stats
        assert "exact match" in out
        assert "resilience (repro.faults)" in out
        assert f"retries:        {s.retries}" in out
        assert f"failed calls:   {s.failed_calls}" in out
        assert f"hedged reads:   {s.hedged_calls}" in out
        assert f"retry delay:    {s.retry_delay_s:.6f}s" in out

    def test_no_resilience_section_when_off(self, tmp_path, capsys):
        from repro.obs.cli import main

        obs = Observability()
        _run("adi", obs=obs)
        path = tmp_path / "trace.json"
        obs.export(str(path))
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "exact match" in out
        assert "resilience" not in out
