"""FaultPlan / ResiliencePolicy validation and query semantics."""

import random

import pytest

from repro.faults import (
    FaultConfigError,
    FaultPlan,
    LatencyWindow,
    NO_POLICY,
    Outage,
    ResiliencePolicy,
)


class TestPlanValidation:
    @pytest.mark.parametrize("bad", [-0.1, 1.1, float("nan"), float("inf")])
    def test_error_rates(self, bad):
        with pytest.raises(FaultConfigError, match="read_error_rate"):
            FaultPlan(read_error_rate=bad)
        with pytest.raises(FaultConfigError, match="write_error_rate"):
            FaultPlan(write_error_rate=bad)

    @pytest.mark.parametrize("bad", [0.5, 0.0, -2.0, float("nan"), float("inf")])
    def test_straggler_multiplier(self, bad):
        with pytest.raises(FaultConfigError, match="straggler multiplier"):
            FaultPlan(stragglers={0: bad})

    def test_negative_indices(self):
        with pytest.raises(FaultConfigError, match="io_node"):
            FaultPlan(stragglers={-1: 2.0})
        with pytest.raises(FaultConfigError, match="error_ops"):
            FaultPlan(error_ops={-3})
        with pytest.raises(FaultConfigError, match="failed_nodes"):
            FaultPlan(failed_nodes={-1})

    @pytest.mark.parametrize("bad", [0.5, float("nan")])
    def test_window_multiplier(self, bad):
        with pytest.raises(FaultConfigError, match="multiplier"):
            LatencyWindow(0, 0.0, 1.0, bad)

    def test_window_interval(self):
        with pytest.raises(FaultConfigError, match="start_s < end_s"):
            LatencyWindow(0, 2.0, 1.0, 2.0)
        with pytest.raises(FaultConfigError, match="start_s < end_s"):
            Outage(0, -1.0, 1.0)
        with pytest.raises(FaultConfigError, match="finite"):
            Outage(0, 0.0, float("inf"))

    def test_valid_plan_is_frozen_and_normalized(self):
        plan = FaultPlan(
            seed=3, read_error_rate=0.1, error_ops=[1, 2, 2],
            stragglers={1: 4.0}, failed_nodes=[0],
        )
        assert plan.error_ops == frozenset({1, 2})
        assert plan.failed_nodes == frozenset({0})
        assert plan.has_errors
        with pytest.raises(AttributeError):
            plan.seed = 4


class TestPolicyValidation:
    def test_bad_values(self):
        with pytest.raises(FaultConfigError, match="max_retries"):
            ResiliencePolicy(max_retries=-1)
        with pytest.raises(FaultConfigError, match="backoff_base_s"):
            ResiliencePolicy(backoff_base_s=-1.0)
        with pytest.raises(FaultConfigError, match="backoff_factor"):
            ResiliencePolicy(backoff_factor=0.5)
        with pytest.raises(FaultConfigError, match="jitter"):
            ResiliencePolicy(jitter=1.5)
        with pytest.raises(FaultConfigError, match="timeout_s"):
            ResiliencePolicy(timeout_s=0.0)
        with pytest.raises(FaultConfigError, match="timeout_s"):
            ResiliencePolicy(timeout_s=float("nan"))
        with pytest.raises(FaultConfigError, match="hedge_threshold"):
            ResiliencePolicy(hedge_threshold=0.9)

    def test_backoff_progression(self):
        pol = ResiliencePolicy(
            max_retries=3, backoff_base_s=0.1, backoff_factor=2.0
        )
        rng = random.Random(0)
        assert pol.backoff_delay(0, rng) == pytest.approx(0.1)
        assert pol.backoff_delay(1, rng) == pytest.approx(0.2)
        assert pol.backoff_delay(2, rng) == pytest.approx(0.4)

    def test_jitter_bounded_and_seeded(self):
        pol = ResiliencePolicy(backoff_base_s=0.1, jitter=0.5)
        a = [pol.backoff_delay(0, random.Random(7)) for _ in range(3)]
        assert a[0] == a[1] == a[2]          # same seed, same delay
        assert 0.1 <= a[0] <= 0.15           # within the jitter band

    def test_hedging_rules(self):
        pol = ResiliencePolicy(hedge_reads=True, hedge_threshold=2.0)
        assert pol.should_hedge(False, 2.0)
        assert not pol.should_hedge(False, 1.5)   # below threshold
        assert not pol.should_hedge(True, 8.0)    # writes never hedge
        assert not NO_POLICY.should_hedge(False, 8.0)


class TestPlanQueries:
    def test_rng_streams_independent_and_reproducible(self):
        plan = FaultPlan(seed=11)
        assert plan.rng(0).random() == plan.rng(0).random()
        assert plan.rng(0).random() != plan.rng(1).random()

    def test_multiplier_at_combines_windows(self):
        plan = FaultPlan(
            stragglers={0: 2.0},
            latency_windows=(
                LatencyWindow(0, 1.0, 2.0, 3.0),
                LatencyWindow(1, 0.0, 10.0, 5.0),
            ),
        )
        assert plan.multiplier_at(0, 0.5) == pytest.approx(2.0)
        assert plan.multiplier_at(0, 1.5) == pytest.approx(6.0)
        assert plan.multiplier_at(1, 5.0) == pytest.approx(5.0)
        # no timestamp (serial path): windows do not apply
        assert plan.multiplier_at(0) == pytest.approx(2.0)
        assert plan.multiplier_at(0, None) == pytest.approx(2.0)

    def test_outage_end_chains_intervals(self):
        plan = FaultPlan(
            outages=(Outage(0, 1.0, 2.0), Outage(0, 2.0, 3.0), Outage(1, 0.0, 9.0))
        )
        assert plan.outage_end(0, 0.5) == pytest.approx(0.5)   # before
        assert plan.outage_end(0, 1.5) == pytest.approx(3.0)   # chained
        assert plan.outage_end(0, 3.0) == pytest.approx(3.0)   # end-exclusive
        assert plan.outage_end(2, 1.0) == pytest.approx(1.0)   # other node
