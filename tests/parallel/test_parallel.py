import numpy as np
import pytest

from repro.engine.executor import RunResult
from repro.ir import ProgramBuilder
from repro.optimizer import build_version
from repro.parallel import makespan, run_version_parallel, speedup_curve
from repro.runtime import IOStats, MachineParams


def transpose_program(n=32):
    b = ProgramBuilder("trans", params=("N",), default_binding={"N": n})
    N = b.param("N")
    A = b.array("A", (N, N))
    B = b.array("B", (N, N))
    with b.nest("t") as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", 1, N)
        nb.assign(A[i, j], B[j, i] + 1.0)
    return b.build()


PARAMS = MachineParams(n_io_nodes=8, io_latency_s=0.005)


class TestMakespan:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            makespan([])

    def test_single_node_reduces_to_serial(self):
        load = np.array([0.5, 0.2])
        r = RunResult(IOStats(io_time_s=1.0, compute_time_s=0.5), load, [], 0)
        assert makespan([r]) == pytest.approx(1.5)

    def test_io_node_bottleneck(self):
        load_hot = np.array([5.0, 0.0])
        r1 = RunResult(IOStats(io_time_s=1.0), load_hot, [], 0)
        r2 = RunResult(IOStats(io_time_s=1.0), load_hot, [], 0)
        assert makespan([r1, r2]) == pytest.approx(10.0)


class TestRunVersionParallel:
    def test_single_node(self):
        cfg = build_version("c-opt", transpose_program())
        run = run_version_parallel(cfg, 1, params=PARAMS)
        assert run.n_nodes == 1
        assert run.time_s > 0
        assert len(run.node_results) == 1

    def test_work_partitioned(self):
        cfg = build_version("c-opt", transpose_program())
        run1 = run_version_parallel(cfg, 1, params=PARAMS)
        run4 = run_version_parallel(cfg, 4, params=PARAMS)
        assert len(run4.node_results) == 4
        # every node did some work, and the total volume matches
        assert all(r.stats.elements_moved > 0 for r in run4.node_results)
        assert run4.total_stats.elements_moved == pytest.approx(
            run1.total_stats.elements_moved, rel=0.25
        )

    def test_parallel_faster(self):
        cfg = build_version("c-opt", transpose_program(64))
        t1 = run_version_parallel(cfg, 1, params=PARAMS).time_s
        t4 = run_version_parallel(cfg, 4, params=PARAMS).time_s
        assert t4 < t1

    def test_speedup_curve_monotone_until_saturation(self):
        cfg = build_version("c-opt", transpose_program(64))
        curve = speedup_curve(cfg, (2, 4, 8), params=PARAMS)
        assert set(curve) == {2, 4, 8}
        assert curve[2] > 1.0
        assert curve[4] >= curve[2] * 0.8  # allow saturation plateaus

    def test_optimized_beats_unoptimized_in_parallel_too(self):
        col = build_version("col", transpose_program(64))
        dopt = build_version("d-opt", transpose_program(64))
        t_col = run_version_parallel(col, 4, params=PARAMS).time_s
        t_dopt = run_version_parallel(dopt, 4, params=PARAMS).time_s
        assert t_dopt < t_col


class TestMakespanValidation:
    def test_heterogeneous_load_vectors_rejected(self):
        """Nodes simulated against different n_io_nodes cannot share a
        makespan; the old code crashed adding mismatched vectors."""
        r1 = RunResult(IOStats(io_time_s=1.0), np.zeros(4), [], 0)
        r2 = RunResult(IOStats(io_time_s=1.0), np.zeros(8), [], 0)
        with pytest.raises(ValueError, match="heterogeneous"):
            makespan([r1, r2])

    def test_homogeneous_vectors_fine(self):
        r1 = RunResult(IOStats(io_time_s=1.0), np.zeros(4), [], 0)
        r2 = RunResult(IOStats(io_time_s=2.0), np.zeros(4), [], 0)
        assert makespan([r1, r2]) == pytest.approx(2.0)


class TestTotalStatsFold:
    def test_fold_matches_merge_chain(self):
        """ParallelRun.total_stats (a single linear fold) must equal the
        old merge-chain accumulation bit for bit."""
        stats = [
            IOStats(
                read_calls=k, write_calls=2 * k,
                elements_read=10 * k, elements_written=5 * k,
                io_time_s=0.1 * k, compute_time_s=0.01 * k,
                redist_messages=k, redist_elements=3 * k,
                redist_time_s=0.001 * k,
            )
            for k in range(1, 9)
        ]
        chained = stats[0]
        for s in stats[1:]:
            chained = chained.merge(s)
        folded = IOStats.fold(stats)
        for f in (
            "read_calls", "write_calls", "elements_read",
            "elements_written", "io_time_s", "compute_time_s",
            "redist_messages", "redist_elements", "redist_time_s",
        ):
            assert getattr(folded, f) == getattr(chained, f)

    def test_fold_empty(self):
        z = IOStats.fold([])
        assert z.calls == 0 and z.total_time_s == 0.0

    def test_run_total_stats_uses_fold(self):
        cfg = build_version("c-opt", transpose_program())
        run = run_version_parallel(cfg, 3, params=PARAMS)
        assert run.total_stats.calls == sum(
            r.stats.calls for r in run.node_results
        )
