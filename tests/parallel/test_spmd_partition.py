"""SPMD partitioning invariants: the node slices exactly cover the work."""

import numpy as np
import pytest

from repro.engine import OOCExecutor, interpret_program
from repro.engine.interpreter import initial_arrays
from repro.ir import ProgramBuilder
from repro.parallel.spmd import run_version_parallel
from repro.optimizer import build_version
from repro.runtime import MachineParams, ParallelFileSystem

SMALL = MachineParams(n_io_nodes=4, stripe_bytes=128, io_latency_s=0.001)


def copy_program(n=12):
    b = ProgramBuilder("p", params=("N",), default_binding={"N": n})
    N = b.param("N")
    A = b.array("A", (N, N))
    B = b.array("B", (N, N))
    with b.nest("c") as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", 1, N)
        nb.assign(A[i, j], B[j, i] + 1.0)
    return b.build()


class TestNodeSlicing:
    def test_bad_slice_rejected(self):
        with pytest.raises(ValueError):
            OOCExecutor(copy_program(), params=SMALL, node_slice=(4, 4))

    def test_slices_partition_iterations(self):
        """The per-node compute iteration counts sum to the full count."""
        p = copy_program(12)
        full = OOCExecutor(
            p, params=SMALL, real=False, memory_budget=120
        ).run()
        total = 0.0
        for rank in range(4):
            r = OOCExecutor(
                p, params=SMALL, real=False, memory_budget=120,
                node_slice=(rank, 4),
            ).run()
            total += r.stats.compute_time_s
        assert total == pytest.approx(full.stats.compute_time_s, rel=1e-9)

    def test_sliced_real_execution_combines_to_full_result(self):
        """Running each node's slice for real against a SHARED file system
        reconstructs exactly the sequential result (no communication is
        needed: slices touch disjoint regions of the written array)."""
        p = copy_program(8)
        binding = p.binding()
        init = initial_arrays(p, binding)
        expected = interpret_program(p, initial=init)
        pfs = ParallelFileSystem(SMALL)
        # build node 0 first (it creates and initializes the arrays),
        # then reuse its storage for the other slices
        ex0 = OOCExecutor(
            p, params=SMALL, real=True, memory_budget=200,
            initial=init, pfs=pfs, node_slice=(0, 2),
        )
        ex0.run()
        ex1 = OOCExecutor.__new__(OOCExecutor)
        # share the stores: emulate the second node on the same files
        ex1.__dict__.update(ex0.__dict__)
        ex1.node_slice = (1, 2)
        ex1._run_count = 0
        ex1.run()
        np.testing.assert_allclose(ex0.array_data("A"), expected["A"])

    def test_more_nodes_than_rows(self):
        """Degenerate: more nodes than outer iterations — extra nodes do
        nothing, the busy ones still cover everything."""
        p = copy_program(4)
        cfg = build_version("c-opt", p, params=SMALL)
        run = run_version_parallel(cfg, 16, params=SMALL)
        moved = sum(r.stats.elements_moved for r in run.node_results)
        single = run_version_parallel(cfg, 1, params=SMALL)
        assert moved == single.total_stats.elements_moved

    def test_untiled_nest_runs_on_node0_only(self):
        from repro.transforms import no_tiling

        p = copy_program(6)
        runs = []
        for rank in range(2):
            ex = OOCExecutor(
                p, params=SMALL, real=False, memory_budget=10**6,
                tiling=no_tiling, node_slice=(rank, 2),
            )
            runs.append(ex.run())
        assert runs[0].stats.calls > 0
        assert runs[1].stats.calls == 0
