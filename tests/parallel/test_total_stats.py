"""``ParallelRun.total_stats`` / ``speedup_curve`` under faults and
degraded collective nests: the fold must stay exact counter for counter
when resilience accounting and degradation enter the picture."""

import dataclasses

import pytest

from repro.collective import CollectiveConfig
from repro.faults import FaultConfig, FaultPlan, ResiliencePolicy
from repro.optimizer import build_version
from repro.parallel import run_version_parallel, speedup_curve
from repro.runtime import IOStats, MachineParams
from repro.workloads import build_workload

PARAMS = MachineParams()
FAULTS = FaultConfig(
    FaultPlan(seed=11, read_error_rate=0.005, stragglers={0: 2.0}),
    ResiliencePolicy(max_retries=6, backoff_base_s=1e-4),
)


def run(workload="trans", n=12, n_nodes=4, **kw):
    cfg = build_version(
        "c-opt", build_workload(workload, n), params=PARAMS, n_nodes=n_nodes
    )
    return run_version_parallel(cfg, n_nodes, params=PARAMS, **kw)


class TestTotalStatsFold:
    def test_fold_equals_merge_chain(self):
        r = run(faults=FAULTS)
        chained = IOStats()
        for nr in r.node_results:
            chained = chained.merge(nr.stats)
        assert r.total_stats == chained

    def test_every_fault_counter_is_summed(self):
        r = run("adi", faults=FAULTS)
        total = r.total_stats
        assert total.retries > 0, "fault plan never fired"
        for f in (
            "retries",
            "failed_calls",
            "hedged_calls",
            "degraded_nests",
            "retry_delay_s",
        ):
            per_node = sum(getattr(nr.stats, f) for nr in r.node_results)
            assert getattr(total, f) == pytest.approx(per_node), f

    def test_degraded_nests_surface_in_fold(self):
        """Failing every rank forces every chosen two-phase nest back to
        independent I/O; the degradations must appear in the fold."""
        faults = FaultConfig(
            FaultPlan(failed_nodes=frozenset(range(4))),
            ResiliencePolicy(degrade_collective=True),
        )
        r = run(
            "trans",
            collective=CollectiveConfig(mode="always"),
            faults=faults,
        )
        assert r.collective is not None
        assert r.collective.degraded, "no nest was degraded"
        assert r.total_stats.degraded_nests == len(r.collective.degraded)
        assert not any(r.collective.chosen.values())
        # degradation keeps the independent accounting for those nests
        clean = run("trans")
        assert r.total_stats.calls == clean.total_stats.calls

    def test_degraded_fold_is_exact_per_node(self):
        faults = FaultConfig(
            FaultPlan(failed_nodes=frozenset(range(4))),
            ResiliencePolicy(degrade_collective=True),
        )
        r = run(
            "trans", collective=CollectiveConfig(mode="always"), faults=faults
        )
        total = r.total_stats
        for f in (fi.name for fi in dataclasses.fields(IOStats)):
            if f == "cache":
                continue
            per_node = sum(getattr(nr.stats, f) for nr in r.node_results)
            assert getattr(total, f) == pytest.approx(per_node), f


class TestSpeedupCurveUnderFaults:
    def test_deterministic_and_finite(self):
        cfg = build_version(
            "c-opt", build_workload("trans", 12), params=PARAMS, n_nodes=1
        )
        c1 = speedup_curve(cfg, (2, 4), params=PARAMS, faults=FAULTS)
        c2 = speedup_curve(cfg, (2, 4), params=PARAMS, faults=FAULTS)
        assert c1 == c2
        assert set(c1) == {2, 4}
        for v in c1.values():
            assert v > 0 and v != float("inf")

    def test_faults_applied_to_baseline_too(self):
        """The curve compares faulted runs to a *faulted* one-node
        baseline — the ratio is not clean-vs-faulted."""
        cfg = build_version(
            "c-opt", build_workload("adi", 12), params=PARAMS, n_nodes=1
        )
        heavy = FaultConfig(
            FaultPlan(seed=2, stragglers={i: 4.0 for i in range(64)}),
            ResiliencePolicy(max_retries=2),
        )
        base_clean = run_version_parallel(cfg, 1, params=PARAMS)
        base_faulted = run_version_parallel(
            cfg, 1, params=PARAMS, faults=heavy
        )
        assert base_faulted.time_s > base_clean.time_s
        curve = speedup_curve(cfg, (2,), params=PARAMS, faults=heavy)
        scaled = run_version_parallel(cfg, 2, params=PARAMS, faults=heavy)
        assert curve[2] == pytest.approx(
            base_faulted.time_s / scaled.time_s
        )
