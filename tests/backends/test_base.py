"""Backend protocol basics: dtype validation, resolution, metrics."""

import numpy as np
import pytest

from repro.backends import (
    BackendError,
    BackendMetrics,
    ChunkedBackend,
    DEFAULT_DTYPE,
    MemoryBackend,
    MmapBackend,
    SimulateBackend,
    SimulatedObjectStore,
    resolve_backend,
    validate_dtype,
)


class TestValidateDtype:
    def test_default_is_float64(self):
        assert validate_dtype(None) == np.dtype(np.float64)
        assert DEFAULT_DTYPE == np.dtype(np.float64)

    @pytest.mark.parametrize(
        "dtype", [np.float32, np.float64, np.int32, np.int64, np.uint16, "f4"]
    )
    def test_numeric_dtypes_pass(self, dtype):
        dt = validate_dtype(dtype)
        assert dt.kind in "fiu"

    @pytest.mark.parametrize("dtype", [np.complex128, bool, object, "U8", "S4"])
    def test_non_numeric_dtypes_rejected(self, dtype):
        with pytest.raises(BackendError):
            validate_dtype(dtype)

    def test_garbage_rejected(self):
        with pytest.raises(BackendError):
            validate_dtype("not a dtype")


class TestResolveBackend:
    def test_none_real_true_is_memory(self):
        assert isinstance(resolve_backend(None, True), MemoryBackend)
        assert isinstance(resolve_backend(None, None), MemoryBackend)

    def test_none_real_false_is_simulate(self):
        assert isinstance(resolve_backend(None, False), SimulateBackend)

    @pytest.mark.parametrize(
        "kind,cls",
        [
            ("memory", MemoryBackend),
            ("simulate", SimulateBackend),
            ("mmap", MmapBackend),
            ("chunked", ChunkedBackend),
            ("object", SimulatedObjectStore),
        ],
    )
    def test_kind_strings(self, kind, cls):
        b = resolve_backend(kind)
        assert isinstance(b, cls)
        assert b.kind == kind
        b.close()

    def test_instance_passthrough(self):
        b = MemoryBackend()
        assert resolve_backend(b) is b

    def test_unknown_kind(self):
        with pytest.raises(BackendError, match="unknown backend kind"):
            resolve_backend("tape")

    def test_not_a_backend(self):
        with pytest.raises(BackendError, match="StorageBackend"):
            resolve_backend(42)

    def test_contradicting_real_flag(self):
        with pytest.raises(BackendError, match="contradicts"):
            resolve_backend(MemoryBackend(), real=False)
        with pytest.raises(BackendError, match="contradicts"):
            resolve_backend("simulate", real=True)

    def test_matching_real_flag_ok(self):
        assert resolve_backend("memory", real=True).kind == "memory"
        assert resolve_backend("simulate", real=False).kind == "simulate"


class TestOpenContract:
    def test_duplicate_name_rejected(self):
        b = MemoryBackend()
        b.open("A", 8)
        with pytest.raises(BackendError, match="already has a file"):
            b.open("A", 8)

    def test_negative_size_rejected(self):
        with pytest.raises(BackendError, match="negative"):
            MemoryBackend().open("A", -1)

    def test_clone_has_fresh_namespace(self):
        b = MemoryBackend()
        b.open("A", 8)
        c = b.clone()
        c.open("A", 8)  # no duplicate-name clash across clones
        assert c is not b

    def test_close_clears_files(self):
        b = MemoryBackend()
        b.open("A", 8)
        b.close()
        b.open("A", 8)  # reopenable after close


class TestBackendMetrics:
    def test_properties_and_fold(self):
        a = BackendMetrics(get_ops=2, put_ops=1, bytes_read=16,
                           bytes_written=8, wall_read_s=0.5, wall_write_s=0.25)
        b = BackendMetrics(get_ops=1, bytes_read=4)
        total = BackendMetrics.fold([a, b])
        assert total.ops == 4
        assert total.bytes_moved == 28
        assert total.wall_s == 0.75
        assert total.to_dict()["get_ops"] == 3
        assert "ops=4" in str(total)

    def test_simulate_backend_raises_on_data(self):
        b = SimulateBackend()
        f = b.open("A", 8)
        with pytest.raises(RuntimeError, match="simulate-only"):
            f.gather(np.array([0], dtype=np.int64))
        with pytest.raises(RuntimeError, match="simulate-only"):
            f.scatter(np.array([0], dtype=np.int64), np.array([1.0]))
