"""mmap backend: real files, extent-counted operations, cleanup."""

import os

import numpy as np
import pytest

from repro.backends import MmapBackend, contiguous_extents
from repro.backends.posix import safe_filename


class TestContiguousExtents:
    def test_empty(self):
        assert contiguous_extents(np.array([], dtype=np.int64)) == 0

    def test_single_run(self):
        assert contiguous_extents(np.arange(10)) == 1

    def test_unsorted_single_run(self):
        assert contiguous_extents(np.array([3, 1, 2, 0])) == 1

    def test_strided(self):
        assert contiguous_extents(np.arange(0, 20, 2)) == 10

    def test_two_runs(self):
        assert contiguous_extents(np.array([0, 1, 2, 10, 11])) == 2


class TestSafeFilename:
    def test_sanitizes_special_chars(self):
        taken = set()
        assert safe_filename("group:g", taken) == "group_g"
        assert safe_filename("A+B", taken) == "A_B"

    def test_collisions_get_suffixes(self):
        taken = set()
        assert safe_filename("A:B", taken) == "A_B"
        assert safe_filename("A+B", taken) == "A_B.1"
        assert safe_filename("A.B", taken) == "A.B"

    def test_empty_name(self):
        assert safe_filename("", set()) == "file"


class TestMmapBackend:
    def test_roundtrip(self):
        b = MmapBackend()
        f = b.open("A", 64)
        addr = np.arange(8, dtype=np.int64)
        f.scatter(addr, np.arange(8, dtype=np.float64))
        out = f.gather(addr)
        np.testing.assert_array_equal(out, np.arange(8, dtype=np.float64))
        b.close()

    def test_starts_zeroed(self):
        b = MmapBackend()
        f = b.open("A", 16)
        np.testing.assert_array_equal(
            f.gather(np.arange(16, dtype=np.int64)), np.zeros(16)
        )
        b.close()

    def test_ops_count_extents(self):
        b = MmapBackend()
        f = b.open("A", 64)
        f.scatter(np.arange(0, 16, 2, dtype=np.int64), np.ones(8))
        assert b.metrics.put_ops == 8  # 8 strided extents
        f.gather(np.arange(8, dtype=np.int64))
        assert b.metrics.get_ops == 1  # one contiguous extent
        assert b.metrics.bytes_written == 8 * 8
        assert b.metrics.bytes_read == 8 * 8
        assert b.metrics.wall_s >= 0
        b.close()

    def test_file_exists_on_disk(self, tmp_path):
        b = MmapBackend(str(tmp_path))
        f = b.open("A", 32)
        f.scatter(np.array([0], dtype=np.int64), np.array([7.0]))
        assert os.path.exists(f.path)
        assert os.path.getsize(f.path) == 32 * 8
        b.close()
        # caller-provided root is not deleted
        assert os.path.exists(str(tmp_path))

    def test_private_root_removed_on_close(self):
        b = MmapBackend()
        root = b.root
        b.open("A", 8)
        assert os.path.isdir(root)
        b.close()
        assert not os.path.exists(root)

    def test_dtype_carried(self):
        b = MmapBackend()
        f = b.open("A", 8, dtype=np.float32)
        assert f.dtype == np.dtype(np.float32)
        f.scatter(np.array([0], dtype=np.int64), np.array([1.5]))
        assert f.gather(np.array([0], dtype=np.int64)).dtype == np.float32
        assert b.metrics.bytes_written == 4
        b.close()

    def test_clone_is_independent(self):
        b = MmapBackend()
        b.open("A", 8)
        c = b.clone()
        c.open("A", 8)
        assert c.root != b.root
        assert c.metrics.ops == 0
        b.close()
        c.close()

    @pytest.mark.parametrize("n", [0, 1])
    def test_tiny_files(self, n):
        b = MmapBackend()
        b.open("A", n)
        b.close()
