"""Simulated object store: deterministic pricing, per-object accounting."""

import numpy as np
import pytest

from repro.backends import BackendError, ObjectStoreParams, SimulatedObjectStore


class TestParams:
    def test_defaults(self):
        p = ObjectStoreParams()
        assert p.get_latency_s == 0.030
        assert p.put_latency_s == 0.045
        assert p.bandwidth_bps == 100.0e6

    def test_transfer_times(self):
        p = ObjectStoreParams(
            get_latency_s=0.01, put_latency_s=0.02, bandwidth_bps=1e6
        )
        assert p.get_time(1_000_000) == pytest.approx(0.01 + 1.0)
        assert p.put_time(500_000) == pytest.approx(0.02 + 0.5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"get_latency_s": -1.0},
            {"put_latency_s": float("nan")},
            {"bandwidth_bps": 0.0},
            {"bandwidth_bps": float("inf")},
            {"default_object_elements": 0},
        ],
    )
    def test_invalid_params_rejected(self, kwargs):
        with pytest.raises(BackendError):
            ObjectStoreParams(**kwargs)


class TestObjectFile:
    def test_roundtrip(self):
        store = SimulatedObjectStore()
        f = store.open("A", 64, chunk_elements=16)
        data = np.arange(64, dtype=np.float64)
        f.scatter(np.arange(64, dtype=np.int64), data)
        np.testing.assert_array_equal(
            f.gather(np.arange(64, dtype=np.int64)), data
        )

    def test_missing_objects_read_zero(self):
        store = SimulatedObjectStore()
        f = store.open("A", 32, chunk_elements=16)
        np.testing.assert_array_equal(
            f.gather(np.arange(32, dtype=np.int64)), np.zeros(32)
        )

    def test_partial_write_is_read_modify_write(self):
        store = SimulatedObjectStore()
        f = store.open("A", 32, chunk_elements=16)
        f.scatter(np.array([3], dtype=np.int64), np.array([1.0]))
        assert store.metrics.get_ops == 1
        assert store.metrics.put_ops == 1
        # full-object overwrite needs no GET
        f.scatter(np.arange(16, 32, dtype=np.int64), np.ones(16))
        assert store.metrics.get_ops == 1
        assert store.metrics.put_ops == 2

    def test_modeled_wall_time_is_deterministic(self):
        def run():
            store = SimulatedObjectStore()
            f = store.open("A", 64, chunk_elements=16)
            f.scatter(np.arange(64, dtype=np.int64), np.ones(64))
            f.gather(np.arange(0, 64, 3, dtype=np.int64))
            return store.metrics.wall_s

        assert run() == run()

    def test_wall_time_matches_params_model(self):
        p = ObjectStoreParams(
            get_latency_s=0.1, put_latency_s=0.2, bandwidth_bps=1e6
        )
        store = SimulatedObjectStore(p)
        f = store.open("A", 16, chunk_elements=16)
        f.scatter(np.arange(16, dtype=np.int64), np.ones(16))  # 1 PUT, 128 B
        f.gather(np.arange(16, dtype=np.int64))  # 1 GET, 128 B
        assert store.metrics.wall_write_s == pytest.approx(p.put_time(128))
        assert store.metrics.wall_read_s == pytest.approx(p.get_time(128))

    def test_per_object_counts(self):
        store = SimulatedObjectStore()
        f = store.open("A", 48, chunk_elements=16)
        f.scatter(np.arange(16, dtype=np.int64), np.ones(16))  # obj 0: 1 put
        f.gather(np.array([0, 20], dtype=np.int64))  # objs 0 and 1: 1 get each
        assert store.object_counts[("A", 0)] == [1, 1]
        assert store.object_counts[("A", 1)] == [1, 0]
        assert store.objects_touched == 2
        gets = sum(g for g, _ in store.object_counts.values())
        puts = sum(p for _, p in store.object_counts.values())
        assert gets == store.metrics.get_ops
        assert puts == store.metrics.put_ops

    def test_clone_shares_params_not_state(self):
        p = ObjectStoreParams(get_latency_s=0.5)
        store = SimulatedObjectStore(p)
        store.open("A", 8)
        c = store.clone()
        assert c.params is p
        assert c.objects_touched == 0
        c.open("A", 8)  # fresh namespace
