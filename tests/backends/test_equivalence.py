"""Backend equivalence: every data-carrying backend yields identical
array contents and bit-identical folded ``IOStats`` on adi and mxm —
through the direct executor, the independent parallel path, and the
two-phase collective path.  The accounting never touches the backend,
so these are exact-equality assertions, not tolerances."""

from dataclasses import replace

import numpy as np
import pytest

from repro.backends import (
    ChunkedBackend,
    MmapBackend,
    SimulatedObjectStore,
)
from repro.engine import OOCExecutor
from repro.experiments.harness import _scaled_params
from repro.optimizer import build_version
from repro.parallel import CollectiveConfig, run_version_parallel
from repro.workloads import build_workload

N = 16
PARAMS = replace(_scaled_params(N), n_io_nodes=4)
N_NODES = 4

BACKEND_MAKERS = {
    "mmap": MmapBackend,
    "chunked": ChunkedBackend,
    "object": SimulatedObjectStore,
}


def _cfg(workload):
    return build_version("c-opt", build_workload(workload, N))


def _stats_fields(stats):
    return (
        stats.read_calls, stats.write_calls,
        stats.elements_read, stats.elements_written,
        stats.io_time_s, stats.compute_time_s,
        stats.redist_messages, stats.redist_elements, stats.redist_time_s,
    )


@pytest.mark.parametrize("workload", ["adi", "mxm"])
@pytest.mark.parametrize("kind", sorted(BACKEND_MAKERS))
class TestDirectExecutor:
    def test_contents_and_stats_match_memory(self, workload, kind):
        cfg = _cfg(workload)

        def run(backend):
            with OOCExecutor(
                cfg.program, cfg.layouts, params=PARAMS, tiling=cfg.tiling,
                storage_spec=cfg.storage_spec, backend=backend,
            ) as ex:
                result = ex.run()
                arrays = {
                    a.name: ex.array_data(a.name).copy()
                    for a in cfg.program.arrays
                }
            return result, arrays

        ref, ref_arrays = run("memory")
        res, arrays = run(BACKEND_MAKERS[kind]())
        assert _stats_fields(res.stats) == _stats_fields(ref.stats)
        assert str(res.stats) == str(ref.stats)
        for name, expected in ref_arrays.items():
            np.testing.assert_array_equal(
                arrays[name], expected,
                err_msg=f"{workload}/{kind}: array {name} differs",
            )
        assert res.backend_metrics is not None
        assert res.backend_metrics.ops > 0
        assert ref.backend_metrics is None  # memory backend measures nothing


@pytest.mark.parametrize("workload", ["adi", "mxm"])
@pytest.mark.parametrize("kind", sorted(BACKEND_MAKERS))
class TestParallelPaths:
    def test_independent_folded_stats_identical(self, workload, kind):
        cfg = _cfg(workload)
        # the real in-memory backend is the reference: the simulate
        # default *scales* nest stats by weight instead of executing
        # repetitions, which reorders float additions by one ulp
        base = run_version_parallel(
            cfg, N_NODES, params=PARAMS, backend="memory"
        )
        run = run_version_parallel(cfg, N_NODES, params=PARAMS, backend=kind)
        assert _stats_fields(run.total_stats) == _stats_fields(
            base.total_stats
        )
        assert str(run.total_stats) == str(base.total_stats)
        assert run.time_s == base.time_s
        assert base.backend_metrics is None
        m = run.backend_metrics
        assert m is not None and m.ops > 0
        # the fold really spans the ranks
        assert len([
            r for r in run.node_results if r.backend_metrics is not None
        ]) == N_NODES

    def test_two_phase_collective_folded_stats_identical(self, workload, kind):
        cfg = _cfg(workload)
        coll = CollectiveConfig(mode="auto")
        base = run_version_parallel(
            cfg, N_NODES, params=PARAMS, collective=coll, backend="memory"
        )
        run = run_version_parallel(
            cfg, N_NODES, params=PARAMS, collective=coll, backend=kind
        )
        assert _stats_fields(run.total_stats) == _stats_fields(
            base.total_stats
        )
        assert str(run.total_stats) == str(base.total_stats)
        assert run.time_s == base.time_s


def test_backend_instance_is_cloned_per_rank():
    cfg = _cfg("mxm")
    store = SimulatedObjectStore()
    run = run_version_parallel(cfg, N_NODES, params=PARAMS, backend=store)
    # rank 0 used the given instance, later ranks clones of it — the
    # shared file namespace never collides
    assert run.backend_metrics.ops > 0
    assert run.total_stats.calls > 0
