"""Executor and runtime integration: backend selection, dtype
threading, legacy ``real=`` aliases, obs gauges."""

from dataclasses import replace

import numpy as np
import pytest

from repro.backends import (
    BackendError,
    ChunkedBackend,
    MemoryBackend,
    MmapBackend,
    SimulatedObjectStore,
)
from repro.engine import OOCExecutor
from repro.experiments.harness import _scaled_params
from repro.obs import Observability
from repro.optimizer import build_version
from repro.runtime import ParallelFileSystem, layout_chunk_elements
from repro.runtime.file import OOCFile
from repro.layout import BlockedLayout, LinearLayout
from repro.linalg import IMat
from repro.workloads import build_workload

N = 16
PARAMS = replace(_scaled_params(N), n_io_nodes=4)


def _cfg(workload="mxm"):
    return build_version("c-opt", build_workload(workload, N))


def _make(cfg, **kw):
    return OOCExecutor(
        cfg.program, cfg.layouts, params=PARAMS, tiling=cfg.tiling,
        storage_spec=cfg.storage_spec, **kw,
    )


class TestBackendSelection:
    def test_default_is_memory(self):
        ex = _make(_cfg())
        assert isinstance(ex.backend, MemoryBackend)
        assert ex.real is True

    def test_real_false_is_simulate(self):
        ex = _make(_cfg(), real=False)
        assert ex.backend.kind == "simulate"
        assert ex.real is False

    def test_kind_string(self):
        with _make(_cfg(), backend="object") as ex:
            assert isinstance(ex.backend, SimulatedObjectStore)
            assert ex.real is True

    def test_instance(self):
        b = MmapBackend()
        with _make(_cfg(), backend=b) as ex:
            assert ex.backend is b

    def test_legacy_real_flags_bit_identical(self):
        cfg = _cfg()
        legacy = _make(cfg, real=True).run()
        default = _make(cfg).run()
        explicit = _make(cfg, backend="memory").run()
        assert str(legacy.stats) == str(default.stats) == str(explicit.stats)
        sim = _make(cfg, real=False).run()
        assert str(sim.stats) == str(default.stats)

    def test_run_result_backend_metrics(self):
        with _make(_cfg(), backend="chunked") as ex:
            r = ex.run()
        assert r.backend_metrics is not None
        assert r.backend_metrics.ops > 0
        assert _make(_cfg()).run().backend_metrics is None

    def test_close_releases_files(self):
        b = MmapBackend()
        root = b.root
        import os

        with _make(_cfg(), backend=b) as ex:
            ex.run()
            assert os.path.isdir(root)
        assert not os.path.exists(root)


class TestDtypeThreading:
    def test_executor_dtype_reaches_files(self):
        cfg = _cfg()
        with _make(cfg, backend="mmap", dtype=np.float32) as ex:
            r = ex.run()
            for a in cfg.program.arrays:
                assert ex.array_data(a.name).dtype == np.float32
        assert r.stats.calls > 0

    def test_oocfile_default_dtype(self):
        pfs = ParallelFileSystem(PARAMS)
        f = OOCFile("A", 64, pfs)
        assert f.dtype == np.dtype(np.float64)

    def test_oocfile_custom_dtype_roundtrip(self):
        pfs = ParallelFileSystem(PARAMS)
        f = OOCFile("A", 64, pfs, dtype=np.int32)
        f.scatter(np.arange(4, dtype=np.int64), np.arange(4))
        out = f.gather(np.arange(4, dtype=np.int64))
        assert out.dtype == np.int32
        np.testing.assert_array_equal(out, np.arange(4, dtype=np.int32))

    def test_oocfile_invalid_dtype(self):
        pfs = ParallelFileSystem(PARAMS)
        with pytest.raises(BackendError):
            OOCFile("A", 64, pfs, dtype=np.complex128)

    def test_oocfile_real_property_reflects_backend(self):
        pfs = ParallelFileSystem(PARAMS)
        assert OOCFile("A", 8, pfs).real is True
        assert OOCFile("B", 8, pfs, real=False).real is False


class TestLayoutChunkHint:
    def test_blocked_layout_yields_block_volume(self):
        assert layout_chunk_elements(BlockedLayout((4, 8))) == 32

    def test_linear_layout_yields_none(self):
        assert layout_chunk_elements(LinearLayout(IMat.identity(2))) is None

    def test_hint_reaches_chunked_backend(self):
        pfs = ParallelFileSystem(PARAMS)
        b = ChunkedBackend()
        f = OOCFile("A", 64, pfs, backend=b, chunk_elements=16)
        assert f._bfile.chunk_elements == 16
        b.close()


class TestObsGauges:
    def test_measuring_backend_publishes_gauges(self):
        obs = Observability()
        with _make(_cfg(), backend="object", obs=obs) as ex:
            r = ex.run()
        m = r.backend_metrics
        g = obs.metrics.gauge
        assert g("backend.get_ops").value == m.get_ops
        assert g("backend.put_ops").value == m.put_ops
        assert g("backend.bytes_read").value == m.bytes_read
        assert g("backend.bytes_written").value == m.bytes_written
        assert g("backend.measured_io_s").value == m.wall_s
        assert g("backend.io_ratio").value == pytest.approx(
            m.wall_s / r.stats.io_time_s
        )

    def test_memory_backend_publishes_no_backend_gauges(self):
        obs = Observability()
        _make(_cfg(), obs=obs).run()
        assert "backend.get_ops" not in obs.metrics
