"""Chunked backend: whole-chunk transfers, read-modify-write, hints."""

import numpy as np
import pytest

from repro.backends import BackendError, ChunkedBackend, DEFAULT_CHUNK_ELEMENTS


def test_default_chunk_size():
    b = ChunkedBackend()
    f = b.open("A", 10000)
    assert f.chunk_elements == DEFAULT_CHUNK_ELEMENTS
    assert f.n_chunks == 3
    b.close()


def test_chunk_hint_overrides_default():
    b = ChunkedBackend()
    f = b.open("A", 64, chunk_elements=16)
    assert f.chunk_elements == 16
    assert f.n_chunks == 4
    b.close()


def test_invalid_chunk_sizes():
    with pytest.raises(BackendError):
        ChunkedBackend(default_chunk_elements=0)
    b = ChunkedBackend()
    with pytest.raises(BackendError):
        b.open("A", 8, chunk_elements=-1)
    b.close()


def test_roundtrip_and_missing_chunks_read_zero():
    b = ChunkedBackend()
    f = b.open("A", 64, chunk_elements=16)
    f.scatter(np.arange(16, 32, dtype=np.int64), np.ones(16))
    out = f.gather(np.arange(0, 64, dtype=np.int64))
    expected = np.zeros(64)
    expected[16:32] = 1.0
    np.testing.assert_array_equal(out, expected)
    b.close()


def test_ops_count_whole_chunks():
    b = ChunkedBackend()
    f = b.open("A", 64, chunk_elements=16)
    # full-chunk overwrite: 1 PUT, no read-modify-write
    f.scatter(np.arange(16, dtype=np.int64), np.ones(16))
    assert (b.metrics.get_ops, b.metrics.put_ops) == (0, 1)
    assert b.metrics.bytes_written == 16 * 8
    # partial write into an existing chunk: 1 GET + 1 PUT
    f.scatter(np.array([3], dtype=np.int64), np.array([5.0]))
    assert (b.metrics.get_ops, b.metrics.put_ops) == (1, 2)
    # whole-chunk traffic even for a 1-element read
    f.gather(np.array([40], dtype=np.int64))
    assert b.metrics.get_ops == 2
    assert b.metrics.bytes_read == 2 * 16 * 8
    b.close()


def test_one_file_per_chunk_on_disk():
    b = ChunkedBackend()
    f = b.open("A", 64, chunk_elements=16)
    f.scatter(np.arange(0, 48, dtype=np.int64), np.ones(48))
    assert f.chunks_on_disk() == 3
    b.close()


def test_gather_spanning_chunks():
    b = ChunkedBackend()
    f = b.open("A", 64, chunk_elements=16)
    data = np.arange(64, dtype=np.float64)
    f.scatter(np.arange(64, dtype=np.int64), data)
    addr = np.array([5, 20, 35, 50], dtype=np.int64)
    np.testing.assert_array_equal(f.gather(addr), data[addr])
    b.close()


def test_clone_keeps_default_chunk_size():
    b = ChunkedBackend(default_chunk_elements=128)
    c = b.clone()
    assert c.default_chunk_elements == 128
    assert c.root != b.root
    b.close()
    c.close()


def test_tail_chunk_shorter():
    b = ChunkedBackend()
    f = b.open("A", 20, chunk_elements=16)
    f.scatter(np.arange(16, 20, dtype=np.int64), np.ones(4))
    # the 4-element write covers the whole 4-element tail chunk: no RMW
    assert (b.metrics.get_ops, b.metrics.put_ops) == (0, 1)
    assert b.metrics.bytes_written == 4 * 8
    b.close()
