"""``python -m repro.backends`` driver."""

import pytest

from repro.backends.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for kind in ("memory", "simulate", "mmap", "chunked", "object"):
        assert kind in out


@pytest.mark.parametrize("kind", ["mmap", "chunked", "object"])
def test_run_verified(kind, tmp_path, capsys):
    args = [
        "run", "--workload", "mxm", "--n", "12",
        "--backend", kind, "--verify",
    ]
    if kind in ("mmap", "chunked"):
        args += ["--root", str(tmp_path)]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "verified" in out
    assert "measured" in out


def test_run_analytics_workload(capsys):
    assert main([
        "run", "--workload", "pipeline", "--n", "12",
        "--backend", "chunked", "--verify",
    ]) == 0
    assert "verified" in capsys.readouterr().out


def test_run_memory_backend_has_no_measured_line(capsys):
    assert main(["run", "--workload", "mxm", "--n", "12",
                 "--backend", "memory"]) == 0
    out = capsys.readouterr().out
    assert "stats:" in out
    assert "measured" not in out


def test_unknown_workload():
    with pytest.raises(SystemExit):
        main(["run", "--workload", "nope", "--backend", "memory"])


def test_verify_rejects_simulate():
    with pytest.raises(SystemExit, match="data-carrying"):
        main(["run", "--workload", "mxm", "--n", "12",
              "--backend", "simulate", "--verify"])
