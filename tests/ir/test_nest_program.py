import pytest

from repro.ir import (
    AffineExpr,
    ArrayDecl,
    ArrayRef,
    Condition,
    IndexVar,
    Loop,
    LoopNest,
    Program,
    ProgramBuilder,
    Ref,
    Statement,
)
from repro.ir.loops import Bound
from repro.linalg import IMat

i, j = IndexVar("i"), IndexVar("j")


def small_nest():
    a = ArrayDecl.make("A", [AffineExpr.var("N") + 1, AffineExpr.var("N") + 1])
    b = ArrayDecl.make("B", [AffineExpr.var("N") + 1, AffineExpr.var("N") + 1])
    stmt = Statement.make(
        ArrayRef.make(a, [i, j]), Ref(ArrayRef.make(b, [j, i])) + 1.0
    )
    return LoopNest.make(
        "n1",
        [Loop.make("i", 1, "N"), Loop.make("j", 1, "N")],
        [stmt],
        params=("N",),
    )


class TestLoop:
    def test_simple_bounds(self):
        l = Loop.make("i", 1, "N")
        assert l.simple
        assert l.lower.const == 1
        assert l.eval_range({"N": 5}) == (1, 5)
        assert l.trip_count({"N": 5}) == 5

    def test_compound_bounds(self):
        l = Loop.from_bounds(
            "v",
            [Bound(AffineExpr.const_expr(0)), Bound(AffineExpr.make({"u": 1}, -4))],
            [Bound(AffineExpr.make({"u": 1})), Bound(AffineExpr.const_expr(4))],
        )
        assert not l.simple
        assert l.eval_range({"u": 6}) == (2, 4)
        with pytest.raises(ValueError):
            _ = l.lower

    def test_bound_divisor(self):
        l = Loop.from_bounds(
            "i", [Bound(AffineExpr.const_expr(3), 2)], [Bound(AffineExpr.const_expr(9), 2)]
        )
        assert l.eval_range({}) == (2, 4)

    def test_divisor_positive(self):
        with pytest.raises(ValueError):
            Bound(AffineExpr.const_expr(1), 0)

    def test_empty_bounds_rejected(self):
        with pytest.raises(ValueError):
            Loop("i", (), (Bound(AffineExpr.const_expr(1)),))

    def test_renamed(self):
        l = Loop.make("j", IndexVar("i"), "N").renamed({"j": "v", "i": "u"})
        assert l.var == "v"
        assert l.eval_range({"u": 2, "N": 9}) == (2, 9)


class TestLoopNest:
    def test_basic_queries(self):
        n = small_nest()
        assert n.depth == 2
        assert n.loop_vars == ("i", "j")
        assert n.arrays() == {"A", "B"}

    def test_refs(self):
        n = small_nest()
        triples = list(n.refs())
        assert len(triples) == 2
        writes = [r for _, r, w in triples if w]
        assert writes[0].array.name == "A"

    def test_access_matrix(self):
        n = small_nest()
        (bref, _), = [(r, w) for r, w in n.refs_to("B")]
        assert n.access_matrix(bref) == IMat([[0, 1], [1, 0]])

    def test_constraint_system_matches_iterate(self):
        n = small_nest()
        sys = n.constraint_system()
        pts = list(n.iterate({"N": 3}))
        assert len(pts) == 9
        for p in pts:
            env = {"N": 3, **p}
            assert sys.satisfied(env)
        assert not sys.satisfied({"N": 3, "i": 0, "j": 1})

    def test_triangular_iterate(self):
        n = LoopNest.make(
            "t",
            [Loop.make("i", 1, "N"), Loop.make("j", i, "N")],
            small_nest().body,
            params=("N",),
        )
        pts = list(n.iterate({"N": 3}))
        assert len(pts) == 6
        assert all(p["j"] >= p["i"] for p in pts)

    def test_estimated_iterations(self):
        n = small_nest()
        assert n.estimated_iterations({"N": 10}) == 100

    def test_pretty_contains_do(self):
        text = small_nest().pretty()
        assert "do i = 1, N" in text and "end do" in text


class TestBuilderAndProgram:
    def build_example(self):
        b = ProgramBuilder("ex", params=("N",), default_binding={"N": 4})
        N = b.param("N")
        U = b.array("U", (N, N))
        V = b.array("V", (N, N))
        with b.nest("nest1", weight=2) as n:
            ii = n.loop("i", 1, N)
            jj = n.loop("j", 1, N)
            n.assign(U[ii, jj], V[jj, ii] + 1.0)
        return b.build()

    def test_program_structure(self):
        p = self.build_example()
        assert p.name == "ex"
        assert [a.name for a in p.arrays] == ["U", "V"]
        assert len(p.nests) == 1
        assert p.nests[0].weight == 2

    def test_one_based_extents(self):
        """1-based subscripts are rebased to 0-based storage: extent N
        holds exactly N elements per dimension, and U[1,1] maps to (0,0)."""
        p = self.build_example()
        assert p.array("U").shape({"N": 4}) == (4, 4)
        stmt = p.nests[0].body[0]
        assert stmt.lhs.index({"i": 1, "j": 1}, {"N": 4}) == (0, 0)
        assert stmt.lhs.index({"i": 4, "j": 4}, {"N": 4}) == (3, 3)

    def test_binding_and_bytes(self):
        p = self.build_example()
        assert p.binding() == {"N": 4}
        assert p.binding({"N": 8}) == {"N": 8}
        assert p.total_array_bytes() == 2 * 16 * 8

    def test_missing_param(self):
        b = ProgramBuilder("x", params=("N", "M"))
        N = b.param("N")
        arr = b.array("A", (N,))
        with b.nest() as n:
            ii = n.loop("i", 1, N)
            n.assign(arr[ii], 0.0)
        with pytest.raises(ValueError):
            b.build().binding()

    def test_unknown_array_or_nest(self):
        p = self.build_example()
        with pytest.raises(KeyError):
            p.array("Z")
        with pytest.raises(KeyError):
            p.nest("zzz")

    def test_duplicate_names_rejected(self):
        b = ProgramBuilder("x", params=("N",))
        N = b.param("N")
        b.array("A", (N,))
        with pytest.raises(ValueError):
            b.array("A", (N,))
        with pytest.raises(KeyError):
            b.param("M")

    def test_empty_nest_rejected(self):
        b = ProgramBuilder("x", params=("N",))
        N = b.param("N")
        arr = b.array("A", (N,))
        with pytest.raises(ValueError):
            with b.nest() as n:
                n.loop("i", 1, N)

    def test_tree_builder(self):
        b = ProgramBuilder("x", params=("N",), default_binding={"N": 4})
        N = b.param("N")
        X = b.array("X", (N,))
        Y = b.array("Y", (N, N))
        with b.tree("t1") as t:
            with t.loop("i", 1, N) as ti:
                t.assign(X[ti], 0.0)
                with t.loop("j", 1, N) as tj:
                    t.assign(Y[ti, tj], X[ti] + 1.0)
        with b.nest() as n:
            ii = n.loop("i", 1, N)
            n.assign(X[ii], 1.0)
        p = b.build()
        assert len(p.trees) == 1
        assert not p.trees[0].is_perfect
        assert p.trees[0].arrays() == {"X", "Y"}

    def test_guarded_statement(self):
        b = ProgramBuilder("x", params=("N",), default_binding={"N": 4})
        N = b.param("N")
        X = b.array("X", (N, N))
        with b.nest() as n:
            ii = n.loop("i", 1, N)
            jj = n.loop("j", 1, N)
            n.assign(X[ii, jj], 0.0, guards=[Condition.eq(jj, 1)])
        stmt = b.build().nests[0].body[0]
        assert stmt.guarded_on({"i": 2, "j": 1})
        assert not stmt.guarded_on({"i": 2, "j": 2})


class TestTreePretty:
    def test_perfect_detection(self):
        b = ProgramBuilder("x", params=("N",))
        N = b.param("N")
        X = b.array("X", (N, N))
        with b.tree() as t:
            with t.loop("i", 1, N) as ti:
                with t.loop("j", 1, N) as tj:
                    t.assign(X[ti, tj], 0.0)
        with b.nest() as n:
            ii = n.loop("i", 1, N)
            n.assign(X[ii, ii], 0.0)
        p = b.build()
        assert p.trees[0].is_perfect
        assert "do i" in p.trees[0].pretty()
