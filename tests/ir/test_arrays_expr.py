import pytest

from repro.ir import (
    AffineExpr,
    ArrayDecl,
    ArrayRef,
    BinOp,
    Call,
    Const,
    IndexVar,
    Ref,
    UnOp,
)
from repro.ir.expr import wrap
from repro.linalg import IMat

i, j, k = IndexVar("i"), IndexVar("j"), IndexVar("k")


def decl2(name="A"):
    return ArrayDecl.make(name, ["N", "N"])


class TestArrayDecl:
    def test_shape(self):
        a = decl2()
        assert a.shape({"N": 8}) == (8, 8)
        assert a.size({"N": 8}) == 64
        assert a.bytes({"N": 8}) == 512

    def test_rank(self):
        assert ArrayDecl.make("x", [4]).rank == 1

    def test_nonpositive_extent(self):
        with pytest.raises(ValueError):
            decl2().shape({"N": 0})

    def test_str(self):
        assert str(decl2()) == "A(N, N)"


class TestArrayRef:
    def test_subscript_count_checked(self):
        with pytest.raises(ValueError):
            ArrayRef.make(decl2(), [i])

    def test_access_matrix_paper_example(self):
        # V(j, i) in a nest (i, j): L = [[0,1],[1,0]]
        r = ArrayRef.make(decl2("V"), [j, i])
        assert r.access_matrix(["i", "j"]) == IMat([[0, 1], [1, 0]])

    def test_access_matrix_with_coefficients(self):
        r = ArrayRef.make(decl2(), [2 * i + j, k + 1])
        assert r.access_matrix(["i", "j", "k"]) == IMat([[2, 1, 0], [0, 0, 1]])

    def test_offset_exprs(self):
        r = ArrayRef.make(decl2(), [i + 1, j + IndexVar("N")])
        offs = r.offset_exprs(["i", "j"])
        assert offs[0].const == 1 and offs[0].is_constant()
        assert offs[1].coeff("N") == 1

    def test_index_concrete(self):
        r = ArrayRef.make(decl2(), [i + 1, 2 * j])
        assert r.index({"i": 3, "j": 5}, {}) == (4, 10)

    def test_substituted(self):
        r = ArrayRef.make(decl2(), [i, j])
        out = r.substituted({"i": AffineExpr.var("u") + 1})
        assert out.index({"u": 2, "j": 0}, {}) == (3, 0)

    def test_str(self):
        assert str(ArrayRef.make(decl2(), [i, j + 1])) == "A(i, j + 1)"


class _Store:
    def __init__(self, values):
        self.values = values

    def __call__(self, ref, env):
        return self.values[(ref.array.name,) + ref.index(env, {})]


class TestExpr:
    def test_const(self):
        assert Const(2.0).evaluate({}, None) == 2.0

    def test_binops(self):
        two, three = Const(2.0), Const(3.0)
        assert BinOp("+", two, three).evaluate({}, None) == 5.0
        assert BinOp("-", two, three).evaluate({}, None) == -1.0
        assert BinOp("*", two, three).evaluate({}, None) == 6.0
        assert BinOp("/", three, two).evaluate({}, None) == 1.5

    def test_unknown_binop(self):
        with pytest.raises(ValueError):
            BinOp("%", Const(1.0), Const(1.0))

    def test_unop(self):
        assert UnOp("-", Const(2.0)).evaluate({}, None) == -2.0

    def test_call(self):
        assert Call("sqrt", Const(9.0)).evaluate({}, None) == 3.0
        with pytest.raises(ValueError):
            Call("tan", Const(0.0))

    def test_operator_sugar(self):
        e = Const(1.0) + 2 * Const(3.0) - 1
        assert e.evaluate({}, None) == 6.0

    def test_ref_evaluate_and_refs(self):
        r = ArrayRef.make(decl2(), [i, j])
        store = _Store({("A", 1, 2): 42.0})
        e = Ref(r) + 1
        assert e.evaluate({"i": 1, "j": 2}, store) == 43.0
        assert list(e.refs()) == [r]

    def test_wrap_rejects_junk(self):
        with pytest.raises(TypeError):
            wrap("hello")

    def test_substituted_threads_through(self):
        r = ArrayRef.make(decl2(), [i, j])
        e = (Ref(r) * 2).substituted({"i": AffineExpr.var("u")})
        store = _Store({("A", 7, 0): 5.0})
        assert e.evaluate({"u": 7, "j": 0}, store) == 10.0
