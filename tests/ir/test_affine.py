import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir import AffineExpr, IndexVar


def affine_exprs():
    return st.builds(
        lambda c, ci, cj: AffineExpr.make({"i": ci, "j": cj}, c),
        st.integers(-10, 10),
        st.integers(-5, 5),
        st.integers(-5, 5),
    )


class TestConstruction:
    def test_of_int(self):
        e = AffineExpr.of(5)
        assert e.is_constant() and e.const == 5

    def test_of_str(self):
        assert AffineExpr.of("N").coeff("N") == 1

    def test_of_indexvar(self):
        assert AffineExpr.of(IndexVar("i")).coeff("i") == 1

    def test_of_bad_type(self):
        with pytest.raises(TypeError):
            AffineExpr.of(3.5)

    def test_zero_coeffs_dropped(self):
        e = AffineExpr.make({"i": 0, "j": 2})
        assert e.names == ("j",)


class TestArithmetic:
    def test_add(self):
        i, j = IndexVar("i"), IndexVar("j")
        e = i + j + 3
        assert e.coeff("i") == 1 and e.coeff("j") == 1 and e.const == 3

    def test_sub_cancels(self):
        i = IndexVar("i")
        e = (i + 3) - i
        assert e.is_constant() and e.const == 3

    def test_scalar_mul(self):
        i = IndexVar("i")
        e = 3 * i - 2
        assert e.coeff("i") == 3 and e.const == -2

    def test_rsub(self):
        i = IndexVar("i")
        e = 10 - i
        assert e.coeff("i") == -1 and e.const == 10

    def test_non_integer_scale_rejected(self):
        with pytest.raises(TypeError):
            AffineExpr.var("i") * 2.5  # type: ignore[operator]

    @given(affine_exprs(), affine_exprs())
    def test_add_evaluates_pointwise(self, a, b):
        env = {"i": 3, "j": -2}
        assert (a + b).evaluate(env) == a.evaluate(env) + b.evaluate(env)

    @given(affine_exprs(), st.integers(-5, 5))
    def test_mul_evaluates_pointwise(self, a, k):
        env = {"i": 4, "j": 7}
        assert (a * k).evaluate(env) == a.evaluate(env) * k


class TestSubstitution:
    def test_rename(self):
        e = AffineExpr.make({"i": 2}, 1).rename({"i": "u"})
        assert e.coeff("u") == 2 and e.coeff("i") == 0

    def test_substitute_composes(self):
        e = AffineExpr.make({"i": 2, "j": 1})
        sub = {"i": AffineExpr.make({"u": 1, "v": 1})}  # i -> u + v
        out = e.substitute(sub)
        assert out.coeff("u") == 2 and out.coeff("v") == 2 and out.coeff("j") == 1

    def test_drop(self):
        e = AffineExpr.make({"i": 1, "N": 1}, 2)
        assert e.drop({"i"}).names == ("N",)

    def test_uses_only(self):
        e = AffineExpr.make({"i": 1, "N": 1})
        assert e.uses_only({"i", "N"})
        assert not e.uses_only({"i"})


class TestStr:
    def test_readable(self):
        e = AffineExpr.make({"i": 1, "j": -2}, 3)
        s = str(e)
        assert "i" in s and "j" in s and "3" in s

    def test_constant_only(self):
        assert str(AffineExpr.const_expr(0)) == "0"
