"""String renderings: these are user-facing (codegen, reports, examples)."""

import pytest

from repro.ir import (
    AffineExpr,
    ArrayDecl,
    ArrayRef,
    Condition,
    IndexVar,
    Loop,
    ProgramBuilder,
    Statement,
)
from repro.ir.expr import BinOp, Call, Const, Ref, UnOp
from repro.ir.loops import Bound
from repro.linalg import IMat

i, j = IndexVar("i"), IndexVar("j")


class TestExprStr:
    def test_nested(self):
        a = ArrayDecl.make("A", [8, 8])
        e = Ref(ArrayRef.make(a, [i, j])) * 2.0 + 1.0
        assert str(e) == "((A(i, j) * 2) + 1)"

    def test_unop_and_call(self):
        assert str(UnOp("-", Const(3.0))) == "(-3)"
        assert str(Call("sqrt", Const(2.0))) == "sqrt(2)"


class TestConditionStr:
    def test_eq(self):
        c = Condition.eq(i, 1)
        assert str(c) == "i - 1 == 0"
        assert str(Condition.ge(j)) == "j >= 0"

    def test_bad_op(self):
        with pytest.raises(ValueError):
            Condition(AffineExpr.var("i"), "<")


class TestStatementStr:
    def test_guarded(self):
        a = ArrayDecl.make("A", [8, 8])
        s = Statement.make(
            ArrayRef.make(a, [i, j]), 1.0, guards=[Condition.eq(j, 1)]
        )
        assert str(s) == "if (j - 1 == 0) A(i, j) = 1"


class TestLoopStr:
    def test_simple(self):
        assert str(Loop.make("i", 1, "N")) == "do i = 1, N"

    def test_compound(self):
        l = Loop.from_bounds(
            "v",
            [Bound(AffineExpr.const_expr(0)), Bound(AffineExpr.var("u"))],
            [Bound(AffineExpr.var("N"), 2)],
        )
        s = str(l)
        assert s.startswith("do v = max(0, u), (N)/2")


class TestTreePretty:
    def test_tree_rendering(self):
        b = ProgramBuilder("p", params=("N",))
        N = b.param("N")
        X = b.array("X", (N, N))
        with b.tree() as t:
            with t.loop("i", 1, N) as ti:
                with t.loop("j", 1, N) as tj:
                    t.assign(X[ti, tj], 0.0)
        with b.nest() as nb:
            ii = nb.loop("i", 1, N)
            nb.assign(X[ii, ii], 1.0)
        p = b.build()
        text = p.trees[0].pretty()
        assert "do i = 1, N" in text
        assert text.count("end do") == 2


class TestIMatRepr:
    def test_repr(self):
        assert repr(IMat([[1, 0], [0, 1]])) == "IMat[1 0; 0 1]"


class TestDependenceEdgeStr:
    def test_truncation(self):
        from repro.dependence import DependenceEdge

        e = DependenceEdge(
            "A", 0, 1, "flow",
            frozenset({(k, 0) for k in range(1, 9)}),
        )
        s = str(e)
        assert "flow dep on A" in s
        assert "…" in s  # more than 4 distances are elided
