"""The package's public surface: everything advertised is importable and
the version/quickstart contract holds."""

import pytest

import repro


class TestPublicAPI:
    def test_all_names_exist(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_quickstart_contract(self):
        """The README quickstart, verbatim."""
        from repro import OOCExecutor, ProgramBuilder, optimize_program

        b = ProgramBuilder("example", params=("N",), default_binding={"N": 16})
        N = b.param("N")
        U, V = b.array("U", (N, N)), b.array("V", (N, N))
        with b.nest("copy") as nest:
            i, j = nest.loop("i", 1, N), nest.loop("j", 1, N)
            nest.assign(U[i, j], V[j, i] + 1.0)
        program = b.build()

        decision = optimize_program(program)
        executor = OOCExecutor(decision.program, decision.layout_objects())
        result = executor.run()
        assert result.stats.calls > 0
        assert decision.layouts == {"U": (1, 0), "V": (0, 1)}

    def test_layout_from_direction_canonical_3d(self):
        from repro import col_major, layout_from_direction, row_major

        assert layout_from_direction((1, 0, 0)).d == col_major(3).d
        assert layout_from_direction((0, 0, 1)).d == row_major(3).d

    def test_version_names_frozen(self):
        assert repro.VERSION_NAMES == (
            "col", "row", "l-opt", "d-opt", "c-opt", "h-opt",
        )
