"""Per-nest × per-array report records: totals, aggregation, rendering."""

from repro.obs import (
    IOReport,
    NestIORecord,
    RedistRecord,
    render_report,
    report_totals,
)


def _records():
    return [
        NestIORecord("n1", "A", read_calls=4, elements_read=40,
                     node=0, path="independent"),
        NestIORecord("n1", "A", read_calls=6, elements_read=60,
                     node=1, path="independent"),
        NestIORecord("n1", "B", write_calls=2, elements_written=20,
                     node=0, path="independent"),
        NestIORecord("n2", "A", read_calls=3, write_calls=3,
                     elements_read=30, elements_written=30,
                     node=0, path="two-phase"),
    ]


class TestTotals:
    def test_sums_every_counter(self):
        totals = report_totals(_records())
        assert totals == {
            "read_calls": 13,
            "write_calls": 5,
            "elements_read": 130,
            "elements_written": 50,
        }

    def test_empty(self):
        assert report_totals([]) == {
            "read_calls": 0,
            "write_calls": 0,
            "elements_read": 0,
            "elements_written": 0,
        }


class TestRender:
    def test_per_rank_rows_collapse(self):
        text = render_report(IOReport(records=_records()))
        lines = [l for l in text.splitlines() if l.startswith("n1")]
        # two ranks of (n1, A) collapse into one row
        assert len(lines) == 2
        row_a = next(l for l in lines if " A " in l)
        assert " 10 " in row_a and " 100 " in row_a

    def test_total_row_present(self):
        text = render_report(IOReport(records=_records()))
        total = next(
            l for l in text.splitlines() if l.startswith("TOTAL")
        )
        assert "13" in total and "130" in total

    def test_cross_check_exact_match(self):
        stats = {
            "read_calls": 13, "write_calls": 5,
            "elements_read": 130, "elements_written": 50,
        }
        text = render_report(IOReport(records=_records()), stats)
        assert "exact match" in text

    def test_cross_check_flags_mismatch(self):
        stats = {
            "read_calls": 12, "write_calls": 5,
            "elements_read": 130, "elements_written": 50,
        }
        text = render_report(IOReport(records=_records()), stats)
        assert "MISMATCH" in text

    def test_redist_lines(self):
        report = IOReport(
            records=_records(),
            redist=[RedistRecord("n2", messages=8, elements=80,
                                 time_s=0.5)],
        )
        text = render_report(report)
        assert "redist n2: 8 messages, 80 elements, 0.500s" in text

    def test_conflicting_paths_marked_mixed(self):
        recs = [
            NestIORecord("n", "A", read_calls=1, path="independent"),
            NestIORecord("n", "A", read_calls=1, path="two-phase"),
        ]
        text = render_report(IOReport(records=recs))
        assert "mixed" in text


class TestRoundTrip:
    def test_report_dict_round_trip(self):
        report = IOReport(
            records=_records(),
            redist=[RedistRecord("n2", 8, 80, 0.5)],
        )
        back = IOReport.from_dict(report.to_dict())
        assert back == report

    def test_via_json(self):
        import json

        report = IOReport(records=_records())
        back = IOReport.from_dict(
            json.loads(json.dumps(report.to_dict()))
        )
        assert back == report
