"""Prometheus/OpenMetrics text exposition (repro.obs.export): format
rules, label escaping, and render → parse round trips."""

import pytest

from repro.obs import (
    MetricsRegistry,
    OpenMetricsError,
    parse_openmetrics,
    registry_from_snapshot,
    render_openmetrics,
)


def _registry():
    reg = MetricsRegistry()
    reg.counter("io.read_calls", node=0).inc(5)
    reg.counter("io.read_calls", node=1).inc(7)
    reg.gauge("cache.capacity").set(4096)
    h = reg.histogram("io.call_size", bounds=(10.0, 100.0))
    h.observe_many([3, 30, 300])
    return reg


class TestRender:
    def test_type_lines_and_suffixes(self):
        text = render_openmetrics(_registry())
        lines = text.splitlines()
        assert "# TYPE io_read_calls counter" in lines
        assert "# TYPE cache_capacity gauge" in lines
        assert "# TYPE io_call_size histogram" in lines
        assert 'io_read_calls_total{node="0"} 5' in lines
        assert "cache_capacity 4096" in lines
        assert lines[-1] == "# EOF"
        assert text.endswith("\n")

    def test_one_type_line_per_family(self):
        lines = render_openmetrics(_registry()).splitlines()
        assert (
            sum(1 for l in lines if l == "# TYPE io_read_calls counter")
            == 1
        )

    def test_histogram_buckets_cumulative(self):
        text = render_openmetrics(_registry())
        lines = text.splitlines()
        assert 'io_call_size_bucket{le="10"} 1' in lines
        assert 'io_call_size_bucket{le="100"} 2' in lines
        assert 'io_call_size_bucket{le="+Inf"} 3' in lines
        assert "io_call_size_count 3" in lines
        assert "io_call_size_sum 333.0" in lines

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c", tag='a"b\\c\nd').inc()
        text = render_openmetrics(reg)
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        parsed = parse_openmetrics(text)
        assert parsed["samples"][
            ("c_total", ("tag", 'a"b\\c\nd'))
        ] == 1.0

    def test_dotted_names_sanitized(self):
        reg = MetricsRegistry()
        reg.counter("a.b-c d").inc()
        text = render_openmetrics(reg)
        assert "a_b_c_d_total 1" in text.splitlines()

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x.y").inc()
        reg.gauge("x_y").set(1)
        with pytest.raises(OpenMetricsError, match="both"):
            render_openmetrics(reg)

    def test_empty_registry_is_just_eof(self):
        assert render_openmetrics(MetricsRegistry()) == "# EOF\n"


class TestParse:
    def test_round_trip_values(self):
        reg = _registry()
        parsed = parse_openmetrics(render_openmetrics(reg))
        s = parsed["samples"]
        assert s[("io_read_calls_total", ("node", "0"))] == 5.0
        assert s[("io_read_calls_total", ("node", "1"))] == 7.0
        assert s[("cache_capacity",)] == 4096.0
        assert s[("io_call_size_bucket", ("le", "+Inf"))] == 3.0
        assert parsed["types"] == {
            "io_read_calls": "counter",
            "cache_capacity": "gauge",
            "io_call_size": "histogram",
        }

    def test_missing_eof_rejected(self):
        with pytest.raises(OpenMetricsError, match="EOF"):
            parse_openmetrics("# TYPE a counter\na_total 1\n")

    def test_content_after_eof_rejected(self):
        with pytest.raises(OpenMetricsError, match="after"):
            parse_openmetrics("# EOF\na 1\n")

    def test_unknown_type_rejected(self):
        with pytest.raises(OpenMetricsError, match="unknown metric type"):
            parse_openmetrics("# TYPE a summary\n# EOF\n")

    def test_duplicate_type_rejected(self):
        with pytest.raises(OpenMetricsError, match="duplicate"):
            parse_openmetrics(
                "# TYPE a counter\n# TYPE a counter\n# EOF\n"
            )

    def test_non_numeric_value_rejected(self):
        with pytest.raises(OpenMetricsError, match="not a number"):
            parse_openmetrics("a abc\n# EOF\n")

    def test_sample_without_value_rejected(self):
        with pytest.raises(OpenMetricsError, match="no value"):
            parse_openmetrics("lonely\n# EOF\n")

    def test_unterminated_labels_rejected(self):
        with pytest.raises(OpenMetricsError, match="unterminated"):
            parse_openmetrics('a{x="1\n# EOF\n')

    def test_line_numbers_reported(self):
        with pytest.raises(OpenMetricsError, match="line 2"):
            parse_openmetrics("# TYPE a counter\na_total oops\n# EOF\n")


class TestSnapshotRoundTrip:
    def test_registry_snapshot_renders_identically(self):
        reg = _registry()
        rebuilt = registry_from_snapshot(reg.to_dict())
        assert parse_openmetrics(render_openmetrics(rebuilt)) == \
            parse_openmetrics(render_openmetrics(reg))

    def test_unknown_type_in_snapshot_rejected(self):
        with pytest.raises(ValueError, match="unknown type"):
            registry_from_snapshot({"x": {"type": "mystery", "value": 1}})
