"""Cost-model drift telemetry: the drift table's measured side equals
the folded IOStats exactly on every execution path, the model error is
reported per nest, and the records survive export round-trips."""

import pytest

from dataclasses import replace

from repro.engine import OOCExecutor
from repro.experiments.harness import _scaled_params
from repro.obs import (
    CostDriftRecord,
    IOReport,
    NestIORecord,
    Observability,
    build_drift,
    drift_totals,
    render_report,
    report_totals,
)
from repro.obs.report import RedistRecord
from repro.optimizer import build_version
from repro.parallel import CollectiveConfig, run_version_parallel
from repro.workloads import build_workload

N = 24
PARAMS = replace(_scaled_params(N), n_io_nodes=4)
N_NODES = 4


def _cfg(workload, version="c-opt"):
    return build_version(version, build_workload(workload, N))


def _run(workload, *, version="c-opt", collective=None, obs=None):
    return run_version_parallel(
        _cfg(workload, version), N_NODES, params=PARAMS,
        collective=collective, obs=obs,
    )


def _assert_exact(drift, stats):
    totals = drift_totals(drift)
    assert totals["read_calls"] == stats.read_calls
    assert totals["write_calls"] == stats.write_calls
    assert totals["elements_read"] == stats.elements_read
    assert totals["elements_written"] == stats.elements_written


class TestExactTotals:
    """Acceptance gate: drift measured totals == folded IOStats, exactly,
    on the direct, independent and two-phase paths — adi and mxm."""

    @pytest.mark.parametrize("workload", ["adi", "mxm"])
    def test_independent(self, workload):
        obs = Observability()
        run = _run(workload, obs=obs)
        assert obs.report.drift
        _assert_exact(obs.report.drift, run.total_stats)

    @pytest.mark.parametrize("workload", ["adi", "mxm"])
    def test_two_phase(self, workload):
        obs = Observability()
        run = _run(
            workload, version="col",
            collective=CollectiveConfig(mode="always"), obs=obs,
        )
        assert obs.report.drift
        _assert_exact(obs.report.drift, run.total_stats)

    @pytest.mark.parametrize("workload", ["adi", "mxm"])
    def test_direct(self, workload):
        cfg = _cfg(workload)
        obs = Observability()
        result = OOCExecutor(
            cfg.program, cfg.layouts, params=PARAMS, tiling=cfg.tiling,
            storage_spec=cfg.storage_spec, obs=obs,
        ).run()
        assert obs.report.drift
        _assert_exact(obs.report.drift, result.stats)


class TestModelError:
    """Acceptance gate: predicted-vs-measured error is reported per nest
    for adi and mxm, and published into the metrics registry."""

    @pytest.mark.parametrize("workload", ["adi", "mxm"])
    def test_every_executed_nest_reports_an_error(self, workload):
        obs = Observability()
        _run(workload, obs=obs)
        executed = {r.nest for r in obs.report.records}
        assert executed
        for nest in executed:
            errors = [
                r.error for r in obs.report.drift
                if r.nest == nest and r.error is not None
            ]
            assert errors, f"nest {nest} has no model-error row"

    def test_error_gauges_published(self):
        obs = Observability()
        _run("adi", obs=obs)
        keys = [k for k, _ in obs.metrics.items()]
        assert any(k.startswith("cost_model.measured_calls") for k in keys)
        assert any(k.startswith("cost_model.predicted_calls") for k in keys)
        assert any(k.startswith("cost_model.call_error") for k in keys)
        # gauge values mirror the drift rows
        for r in obs.report.drift:
            if r.error is None:
                continue
            g = obs.metrics.gauge(
                "cost_model.call_error", nest=r.nest, array=r.array
            )
            assert g.value == r.error

    def test_predictions_identical_across_ranks(self):
        """The prediction is per-program; registering it once (rank 0)
        must not depend on which rank computes it."""
        cfg = _cfg("adi")
        predicted = [
            OOCExecutor(
                cfg.program, cfg.layouts, params=PARAMS, tiling=cfg.tiling,
                storage_spec=cfg.storage_spec,
            ).predicted_io()
            for _ in range(2)
        ]
        assert predicted[0] == predicted[1]
        assert predicted[0]


class TestBuildDrift:
    def _measured(self):
        return [
            NestIORecord("n1", "A", read_calls=60, write_calls=0,
                         elements_read=600, node=0, path="independent"),
            NestIORecord("n1", "A", read_calls=40, write_calls=10,
                         elements_read=400, elements_written=100,
                         node=1, path="independent"),
            NestIORecord("n1", "grouped", read_calls=5, node=0,
                         path="independent"),
        ]

    def test_pairs_measured_with_predictions(self):
        drift = build_drift(self._measured(), {"n1": {"A": 110.0}})
        (a,) = [r for r in drift if r.array == "A"]
        assert a.measured_calls == 110
        assert a.predicted_calls == 110.0
        assert a.error == 0.0

    def test_unpredicted_pair_has_none_prediction(self):
        drift = build_drift(self._measured(), {"n1": {"A": 110.0}})
        (g,) = [r for r in drift if r.array == "grouped"]
        assert g.predicted_calls is None
        assert g.error is None
        assert g.measured_calls == 5

    def test_unexecuted_prediction_appended_visibly(self):
        drift = build_drift(
            self._measured(), {"n1": {"A": 110.0}, "ghost": {"B": 7.0}}
        )
        (ghost,) = [r for r in drift if r.nest == "ghost"]
        assert ghost.path == "unexecuted"
        assert ghost.measured_calls == 0
        assert ghost.error is None

    def test_totals_equal_record_totals_regardless_of_predictions(self):
        records = self._measured()
        drift = build_drift(records, {"ghost": {"B": 7.0}})
        assert drift_totals(drift) == report_totals(records)

    def test_error_is_signed_relative(self):
        r = CostDriftRecord("n", "A", predicted_calls=90.0,
                            read_calls=100, write_calls=0)
        assert r.error == pytest.approx(-0.1)

    def test_round_trip(self):
        r = CostDriftRecord("n", "A", predicted_calls=None,
                            read_calls=3, path="two-phase")
        assert CostDriftRecord.from_dict(r.to_dict()) == r


class TestMixedRecordTotals:
    def test_report_totals_skips_redist_records(self):
        mixed = [
            NestIORecord("n1", "A", read_calls=7, elements_read=70),
            RedistRecord("n1", messages=99, elements=990),
            NestIORecord("n2", "B", write_calls=3, elements_written=30),
        ]
        totals = report_totals(mixed)
        assert totals == {
            "read_calls": 7, "write_calls": 3,
            "elements_read": 70, "elements_written": 30,
        }


class TestRenderAndExport:
    def test_render_shows_drift_section_and_exact_cross_check(self):
        obs = Observability()
        run = _run("adi", obs=obs)
        text = render_report(obs.report, run.total_stats.to_dict())
        assert "cost-model drift" in text
        assert "drift measured totals vs folded IOStats: exact match" in text
        assert "model error:" in text

    def test_drift_survives_payload_round_trip(self):
        obs = Observability()
        _run("mxm", obs=obs)
        payload = obs.to_payload()
        loaded = IOReport.from_dict(payload["io_report"])
        assert loaded.drift == obs.report.drift

    def test_off_by_default_no_drift_work(self):
        run = _run("adi", obs=None)
        assert run.total_stats.calls > 0  # nothing exploded without obs
