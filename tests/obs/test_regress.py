"""Regression gate: the baseline envelope store, the tolerance-policy
diff engine, and the ``regress`` CLI's exit-code contract (0 pass,
1 regression, 2 usage/missing/malformed)."""

import json

import pytest

from repro.obs.baselines import (
    KIND,
    SCHEMA_VERSION,
    BaselineError,
    capture,
    load_baseline,
    make_envelope,
    write_baseline,
)
from repro.obs.cli import main
from repro.obs.regress import (
    MetricDiff,
    TolerancePolicy,
    check_paths,
    diff_docs,
    direction_of,
    render_regress,
    summarize_baseline,
)


def _doc(results, meta=None, smoke=False):
    return make_envelope(results, meta, smoke=smoke)


def _results():
    """A plausible bench payload: counters, modeled times, a histogram."""
    return {
        "bench_a": {
            "read_calls": 100,
            "write_calls": 40,
            "io_time_s": 2.5,
            "speedup": 3.0,
            "two_phase": True,
            "hist": {
                "type": "histogram",
                "count": 10, "sum": 55.0, "min": 1.0, "max": 10.0,
                "p50": 5.0, "p95": 9.5, "p99": 9.9,
                "bucket_counts": [4, 6], "bounds": [5.0],
            },
        },
    }


class TestEnvelope:
    def test_round_trip(self, tmp_path):
        doc = _doc(_results(), {"bench_a": {"n": 64}}, smoke=True)
        path = tmp_path / "b.json"
        write_baseline(str(path), doc)
        loaded = load_baseline(str(path))
        assert loaded == json.loads(json.dumps(doc))
        assert loaded["kind"] == KIND
        assert loaded["schema_version"] == SCHEMA_VERSION
        assert loaded["smoke"] is True
        assert loaded["meta"]["bench_a"] == {"n": 64}

    def test_envelope_carries_machine_and_rev(self):
        doc = _doc(_results())
        assert "n_io_nodes" in doc["machine"]
        assert "io_latency_s" in doc["machine"]
        assert isinstance(doc["git_rev"], str) and doc["git_rev"]

    def test_missing_file(self, tmp_path):
        with pytest.raises(BaselineError, match="not found"):
            load_baseline(str(tmp_path / "absent.json"))

    def test_malformed_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(BaselineError, match="malformed"):
            load_baseline(str(path))

    def test_wrong_kind(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps({"traceEvents": []}))
        with pytest.raises(BaselineError, match="kind"):
            load_baseline(str(path))

    def test_wrong_schema_version(self, tmp_path):
        doc = _doc(_results())
        doc["schema_version"] = 99
        path = tmp_path / "v99.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(BaselineError, match="schema_version 99"):
            load_baseline(str(path))

    def test_non_object_top_level(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(BaselineError, match="not an object"):
            load_baseline(str(path))

    def test_capture_failure_writes_nothing(self, tmp_path):
        out = tmp_path / "cap.json"
        # "false" stands in for a python whose bench run exits nonzero
        with pytest.raises(BaselineError, match="benchmark run failed"):
            capture(str(out), python="false")
        assert not out.exists()


class TestDirection:
    @pytest.mark.parametrize("path, d", [
        ("bench_a/io_time_s", -1),
        ("bench_a/latency", -1),
        ("bench_a/cache/miss_rate", -1),
        ("bench_a/speedup", 1),
        ("bench_a/gain", 1),
        ("bench_a/cache/hit_rate", 1),
        ("bench_a/read_calls", 0),
        ("bench_a/elements", 0),
    ])
    def test_leaf_names_the_metric(self, path, d):
        assert direction_of(path) == d

    def test_inner_components_do_not_override_leaf(self):
        # the bench is named after a time but the leaf is a speedup
        assert direction_of("bench_time_sweep/speedup") == 1

    def test_optimality_fragment_is_lower_better(self):
        # achieved/bound ratio: 1.0 is optimal, growth is a regression
        assert direction_of("bench_bounds/mxm/c-opt/optimality_ratio") == -1

    def test_bound_fragment_is_higher_better(self):
        # a tighter (larger) lower bound is an analysis improvement
        assert direction_of("bench_bounds/mxm/bound_elements") == 1

    def test_predicted_cost_is_lower_better(self):
        # autotune decisions: a cheaper modeled configuration is better
        assert direction_of(
            "bench_autotune/adi/joint/predicted_cost_s"
        ) == -1

    def test_drift_fragment_is_lower_better(self):
        # predicted-vs-measured divergence shrinking is recovery
        assert direction_of("bench_autotune/adi/cost_drift") == -1
        assert direction_of("bench_autotune/loop/drift_after") == -1


class TestDiffEngine:
    def test_identical_docs_pass(self):
        report = diff_docs(_doc(_results()), _doc(_results()))
        assert report.ok
        assert report.diffs == []
        assert report.compared > 0

    def test_synthetic_io_call_regression_fails_readably(self):
        """The acceptance gate: +10% I/O calls must FAIL with a diff a
        human can read — metric path, both values, the drift."""
        current = _results()
        current["bench_a"]["read_calls"] = 110  # +10%
        current["bench_a"]["io_time_s"] = 2.9   # +16%
        report = diff_docs(_doc(_results()), _doc(current))
        assert not report.ok
        assert len(report.failures) == 2
        text = render_regress(report)
        assert "FAIL" in text
        assert "bench_a/read_calls: 100 -> 110" in text
        assert "+10.0%" in text
        assert "bench_a/io_time_s: 2.5 -> 2.9" in text
        assert "WORSE" in text

    def test_int_counters_are_exact_match_even_when_fewer(self):
        current = _results()
        current["bench_a"]["read_calls"] = 90  # "improvement" still fails
        report = diff_docs(_doc(_results()), _doc(current))
        assert not report.ok
        (d,) = report.failures
        assert d.status == "changed"
        assert "deterministic counter" in d.note

    def test_float_within_tolerance_passes(self):
        current = _results()
        current["bench_a"]["io_time_s"] = 2.52  # +0.8% < 1%
        assert diff_docs(_doc(_results()), _doc(current)).ok

    def test_float_improvement_passes_as_better(self):
        current = _results()
        current["bench_a"]["io_time_s"] = 2.0
        current["bench_a"]["speedup"] = 4.0
        report = diff_docs(_doc(_results()), _doc(current))
        assert report.ok
        assert {d.status for d in report.diffs} == {"better"}

    def test_bool_flip_fails(self):
        current = _results()
        current["bench_a"]["two_phase"] = False
        report = diff_docs(_doc(_results()), _doc(current))
        (d,) = report.failures
        assert d.status == "changed" and "boolean" in d.note

    def test_bucket_layout_ignored_percentiles_compared(self):
        current = _results()
        # re-bucketing alone must not trip the gate...
        current["bench_a"]["hist"]["bucket_counts"] = [2, 2, 6]
        current["bench_a"]["hist"]["bounds"] = [2.0, 5.0]
        assert diff_docs(_doc(_results()), _doc(current)).ok
        # ...but a shifted percentile must
        current["bench_a"]["hist"]["p95"] = 12.0
        report = diff_docs(_doc(_results()), _doc(current))
        assert not report.ok
        assert report.failures[0].path == "bench_a/hist/p95"

    def test_missing_metric_fails_added_passes(self):
        current = _results()
        del current["bench_a"]["speedup"]
        current["bench_a"]["extra"] = 7
        report = diff_docs(_doc(_results()), _doc(current))
        assert [d.status for d in report.failures] == ["missing"]
        assert [d.status for d in report.diffs if not d.failed] == ["added"]

    def test_missing_benchmark_fails(self):
        report = diff_docs(_doc(_results()), _doc({}))
        (d,) = report.failures
        assert d.status == "missing" and d.path == "bench_a"

    def test_smoke_mismatch_is_config_failure(self):
        report = diff_docs(_doc(_results(), smoke=True), _doc(_results()))
        (d,) = report.failures
        assert d.status == "config" and d.path == "smoke"

    def test_machine_mismatch_is_config_failure(self):
        base = _doc(_results())
        current = _doc(_results())
        current["machine"] = dict(current["machine"], n_io_nodes=8)
        report = diff_docs(base, current)
        (d,) = report.failures
        assert d.status == "config" and d.path == "machine"

    def test_meta_mismatch_is_config_failure(self):
        base = _doc(_results(), {"bench_a": {"n": 64}})
        current = _doc(_results(), {"bench_a": {"n": 128}})
        report = diff_docs(base, current)
        (d,) = report.failures
        assert d.status == "config" and d.path == "meta/bench_a"

    def test_list_length_change_fails(self):
        base = _doc({"b": {"curve": [1.0, 2.0, 3.0]}})
        current = _doc({"b": {"curve": [1.0, 2.0]}})
        report = diff_docs(base, current)
        (d,) = report.failures
        assert d.path == "b/curve/len"

    def test_wider_tolerance_passes_what_default_fails(self):
        current = _results()
        current["bench_a"]["io_time_s"] = 2.6  # +4%
        assert not diff_docs(_doc(_results()), _doc(current)).ok
        assert diff_docs(
            _doc(_results()), _doc(current), TolerancePolicy(rel_tol=0.05)
        ).ok

    def test_describe_is_one_readable_line(self):
        d = MetricDiff("b/io_time_s", 2.5, 2.9, "worse", "+16.0%")
        assert d.describe() == "WORSE    b/io_time_s: 2.5 -> 2.9  (+16.0%)"


class TestSummarize:
    def test_one_line_per_bench_with_meta(self):
        text = summarize_baseline(_doc(_results(), {"bench_a": {"n": 64}}))
        assert f"kind={KIND}" in text
        assert "1 benchmark result(s)" in text
        assert "bench_a" in text and "[n=64]" in text


class TestCLI:
    def _write(self, tmp_path, name, doc):
        path = tmp_path / name
        write_baseline(str(path), doc)
        return str(path)

    def test_check_pass_exit_0(self, tmp_path, capsys):
        b = self._write(tmp_path, "b.json", _doc(_results()))
        c = self._write(tmp_path, "c.json", _doc(_results()))
        assert main(["regress", "check", b, c]) == 0
        assert "regress: PASS" in capsys.readouterr().out

    def test_check_regression_exit_1(self, tmp_path, capsys):
        current = _results()
        current["bench_a"]["read_calls"] = 110
        b = self._write(tmp_path, "b.json", _doc(_results()))
        c = self._write(tmp_path, "c.json", _doc(current))
        assert main(["regress", "check", b, c]) == 1
        out = capsys.readouterr().out
        assert "regress: FAIL" in out and "read_calls" in out

    def test_check_accepts_bare_results_doc(self, tmp_path, capsys):
        """A raw ``pytest --json`` doc (no envelope) gates fine."""
        b = self._write(tmp_path, "b.json", _doc(_results()))
        c = tmp_path / "bare.json"
        c.write_text(json.dumps({"results": _results()}))
        assert main(["regress", "check", b, str(c)]) == 0

    def test_check_missing_baseline_exit_2(self, tmp_path, capsys):
        c = self._write(tmp_path, "c.json", _doc(_results()))
        assert main(["regress", "check",
                     str(tmp_path / "absent.json"), c]) == 2
        assert "not found" in capsys.readouterr().err

    def test_check_malformed_baseline_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{oops")
        c = self._write(tmp_path, "c.json", _doc(_results()))
        assert main(["regress", "check", str(bad), c]) == 2
        assert "malformed" in capsys.readouterr().err

    def test_check_current_without_results_exit_2(self, tmp_path, capsys):
        b = self._write(tmp_path, "b.json", _doc(_results()))
        c = tmp_path / "norescults.json"
        c.write_text(json.dumps({"hello": 1}))
        assert main(["regress", "check", b, str(c)]) == 2
        assert "no results" in capsys.readouterr().err

    def test_check_current_from_stdin(self, tmp_path, capsys, monkeypatch):
        import io

        b = self._write(tmp_path, "b.json", _doc(_results()))
        monkeypatch.setattr(
            "sys.stdin", io.StringIO(json.dumps({"results": _results()}))
        )
        assert main(["regress", "check", b, "-"]) == 0
        assert "regress: PASS" in capsys.readouterr().out

    def test_check_malformed_stdin_exit_2(self, tmp_path, capsys, monkeypatch):
        import io

        b = self._write(tmp_path, "b.json", _doc(_results()))
        monkeypatch.setattr("sys.stdin", io.StringIO("{oops"))
        assert main(["regress", "check", b, "-"]) == 2
        assert "malformed current results JSON in stdin" in (
            capsys.readouterr().err
        )

    def test_report_exit_0(self, tmp_path, capsys):
        b = self._write(tmp_path, "b.json", _doc(_results()))
        assert main(["regress", "report", b]) == 0
        assert f"kind={KIND}" in capsys.readouterr().out

    def test_report_missing_exit_2(self, tmp_path, capsys):
        assert main(["regress", "report", str(tmp_path / "no.json")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_unknown_subcommand_usage_exit_2(self):
        with pytest.raises(SystemExit) as e:
            main(["regress", "bogus"])
        assert e.value.code == 2

    def test_rel_tol_flag_widens_the_gate(self, tmp_path):
        current = _results()
        current["bench_a"]["io_time_s"] = 2.6  # +4%
        b = self._write(tmp_path, "b.json", _doc(_results()))
        c = self._write(tmp_path, "c.json", _doc(current))
        assert main(["regress", "check", b, c]) == 1
        assert main(["regress", "check", b, c, "--rel-tol", "0.05"]) == 0


class TestTraceReportErrorPaths:
    """``report`` (the trace renderer) hardening rides along."""

    def test_missing_trace_exit_2(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "no.json")]) == 2
        assert capsys.readouterr().err

    def test_malformed_trace_exit_2(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        path.write_text("not json at all")
        assert main(["report", str(path)]) == 2
        assert capsys.readouterr().err

    def test_non_object_trace_exit_2(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        path.write_text("[]")
        assert main(["report", str(path)]) == 2
        assert capsys.readouterr().err


class TestCommittedBaselines:
    """The baselines this repo ships must stay loadable and
    self-consistent — the CI gate depends on them."""

    @pytest.mark.parametrize("path", [
        "benchmarks/baselines/BENCH_smoke.json",
        "BENCH_cache.json",
        "BENCH_tables.json",
    ])
    def test_loads_and_self_diffs_clean(self, path):
        doc = load_baseline(path)
        assert doc["results"]
        report = diff_docs(doc, doc)
        assert report.ok and report.diffs == []

    def test_smoke_baseline_is_marked_smoke(self):
        assert load_baseline(
            "benchmarks/baselines/BENCH_smoke.json"
        )["smoke"] is True
