"""Observability wired through the system: off is bit-identical, on
reports totals that equal the folded IOStats exactly, and the CLI
renders the cross-checked table."""

import json

import pytest

from dataclasses import replace

from repro.engine import OOCExecutor
from repro.experiments.harness import _scaled_params
from repro.obs import ObsConfig, Observability, report_totals
from repro.optimizer import build_version, optimize_program
from repro.parallel import CollectiveConfig, run_version_parallel
from repro.workloads import build_workload

N = 24
PARAMS = replace(_scaled_params(N), n_io_nodes=4)
N_NODES = 4


def _cfg(workload, version="c-opt"):
    return build_version(version, build_workload(workload, N))


def _stats_fields(stats):
    return (
        stats.read_calls, stats.write_calls,
        stats.elements_read, stats.elements_written,
        stats.io_time_s, stats.compute_time_s,
        stats.redist_messages, stats.redist_elements, stats.redist_time_s,
    )


def _run(workload, *, version="c-opt", collective=None, obs=None):
    return run_version_parallel(
        _cfg(workload, version), N_NODES, params=PARAMS,
        collective=collective, obs=obs,
    )


class TestOffByDefault:
    """Acceptance gate: obs off (the default) leaves IOStats and the
    printed stats line bit-identical — on adi and on mxm."""

    @pytest.mark.parametrize("workload", ["adi", "mxm"])
    def test_parallel_run_bit_identical(self, workload):
        base = _run(workload)
        on = _run(workload, obs=Observability())
        assert _stats_fields(on.total_stats) == _stats_fields(
            base.total_stats
        )
        assert str(on.total_stats) == str(base.total_stats)
        assert on.time_s == base.time_s

    @pytest.mark.parametrize("workload", ["adi", "mxm"])
    def test_collective_run_bit_identical(self, workload):
        coll = CollectiveConfig(mode="auto")
        base = _run(workload, collective=coll)
        on = _run(workload, collective=coll, obs=Observability())
        assert _stats_fields(on.total_stats) == _stats_fields(
            base.total_stats
        )
        assert str(on.total_stats) == str(base.total_stats)
        assert on.time_s == base.time_s

    def test_executor_bit_identical(self):
        cfg = _cfg("adi")
        base = OOCExecutor(
            cfg.program, cfg.layouts, params=PARAMS, tiling=cfg.tiling,
            storage_spec=cfg.storage_spec,
        ).run()
        on = OOCExecutor(
            cfg.program, cfg.layouts, params=PARAMS, tiling=cfg.tiling,
            storage_spec=cfg.storage_spec, obs=Observability(),
        ).run()
        assert _stats_fields(on.stats) == _stats_fields(base.stats)
        assert str(on.stats) == str(base.stats)

    def test_disabled_config_is_inert(self):
        obs = Observability(ObsConfig(enabled=False))
        run = _run("adi", obs=obs)
        assert run.total_stats.calls > 0
        assert obs.tracer.spans == []
        assert len(obs.metrics) == 0
        assert obs.report.records == []


class TestExactTotals:
    """The report's call/element totals equal the folded stats exactly."""

    def test_independent_parallel(self):
        obs = Observability()
        run = _run("adi", obs=obs)
        totals = report_totals(obs.report.records)
        s = run.total_stats
        assert totals["read_calls"] == s.read_calls
        assert totals["write_calls"] == s.write_calls
        assert totals["elements_read"] == s.elements_read
        assert totals["elements_written"] == s.elements_written

    @pytest.mark.parametrize("mode", ["auto", "always"])
    def test_collective_adi(self, mode):
        obs = Observability()
        run = _run(
            "adi", version="col",
            collective=CollectiveConfig(mode=mode), obs=obs,
        )
        totals = report_totals(obs.report.records)
        s = run.total_stats
        assert totals["read_calls"] == s.read_calls
        assert totals["write_calls"] == s.write_calls
        assert totals["elements_read"] == s.elements_read
        assert totals["elements_written"] == s.elements_written
        # redistribution records mirror the stats' redist counters
        assert sum(r.messages for r in obs.report.redist) == \
            s.redist_messages
        assert sum(r.elements for r in obs.report.redist) == \
            s.redist_elements

    def test_direct_executor(self):
        cfg = _cfg("adi")
        obs = Observability()
        result = OOCExecutor(
            cfg.program, cfg.layouts, params=PARAMS, tiling=cfg.tiling,
            storage_spec=cfg.storage_spec, obs=obs,
        ).run()
        totals = report_totals(obs.report.records)
        assert totals["read_calls"] == result.stats.read_calls
        assert totals["write_calls"] == result.stats.write_calls
        assert totals["elements_read"] == result.stats.elements_read
        assert totals["elements_written"] == result.stats.elements_written


class TestInstrumentation:
    def test_pipeline_spans(self):
        obs = Observability()
        program = build_workload("adi", N)
        optimize_program(program, obs=obs)
        names = [s.name for s in obs.tracer.wall_spans]
        assert "optimize_program" in names
        assert "normalize" in names
        assert "interference" in names
        assert any(n.startswith("optimize_nest") for n in names)

    def test_executor_spans_and_metrics(self):
        cfg = _cfg("adi")
        obs = Observability()
        result = OOCExecutor(
            cfg.program, cfg.layouts, params=PARAMS, tiling=cfg.tiling,
            storage_spec=cfg.storage_spec, obs=obs,
        ).run()
        names = [s.name for s in obs.tracer.wall_spans]
        assert "executor.run" in names
        assert any(n.startswith("nest ") for n in names)
        assert obs.metrics.counter("io.read_calls").value == \
            result.stats.read_calls
        assert "io.call_elements" in obs.metrics

    def test_sim_events_recorded(self):
        obs = Observability()
        run = _run(
            "adi", version="col",
            collective=CollectiveConfig(mode="always"), obs=obs,
        )
        assert run.collective.sim is not None
        assert obs.sim_summary is not None
        assert obs.sim_summary["makespan_s"] == pytest.approx(run.time_s)
        sim_tracks = {s.track for s in obs.tracer.virtual_spans}
        assert any(t.startswith("node ") for t in sim_tracks)

    def test_sim_events_match_sim_result_count(self):
        obs = Observability()
        run = _run(
            "adi", version="col",
            collective=CollectiveConfig(mode="always"), obs=obs,
        )
        node_spans = [
            s for s in obs.tracer.virtual_spans
            if s.track.startswith("node ")
        ]
        assert len(node_spans) >= run.collective.sim.n_events


class TestReportEventCompat:
    def test_stringifies_to_old_lines(self):
        decision = optimize_program(build_workload("adi", N))
        assert decision.report, "report must not be empty"
        for event in decision.report:
            assert str(event) == event.text
            d = event.to_dict()
            assert d["kind"] == event.kind
            json.dumps(d)  # structured payload must be JSON-ready
        kinds = {e.kind for e in decision.report}
        assert {"components", "nest"} <= kinds
        assert decision.report_lines == [str(e) for e in decision.report]


class TestCLI:
    def test_report_command_exact_match(self, tmp_path, capsys):
        from repro.obs.cli import main

        obs = Observability()
        _run(
            "adi", version="col",
            collective=CollectiveConfig(mode="always"), obs=obs,
        )
        path = tmp_path / "trace.json"
        obs.export(str(path))
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "exact match" in out
        assert "TOTAL" in out
        assert "event sim:" in out

    def test_capture_then_report(self, tmp_path, capsys):
        from repro.obs.cli import main

        path = tmp_path / "cap.json"
        assert main([
            "capture", "--workload", "adi", "--n", "16",
            "--nodes", "2", "--collective", "--out", str(path),
        ]) == 0
        assert main(["report", str(path), "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "exact match" in out
        assert "metric" in out
