"""Span tracer: nesting, explicit begin/end, virtual time, instants."""

import pytest

from repro.obs import Tracer


class FakeClock:
    """Deterministic injectable clock: advances on demand."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracer(clock):
    return Tracer(clock=clock)


class TestWallSpans:
    def test_span_times_relative_to_epoch(self, tracer, clock):
        clock.advance(1.0)
        with tracer.span("work") as s:
            clock.advance(0.5)
        assert s.start_s == pytest.approx(1.0)
        assert s.end_s == pytest.approx(1.5)
        assert s.duration_s == pytest.approx(0.5)
        assert s.closed

    def test_nesting_assigns_parent(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_explicit_begin_end(self, tracer, clock):
        s = tracer.begin("phase", "compile", nest="n1")
        clock.advance(2.0)
        tracer.end(s, calls=7)
        assert s.duration_s == pytest.approx(2.0)
        assert s.args == {"nest": "n1", "calls": 7}

    def test_end_closes_forgotten_children(self, tracer):
        outer = tracer.begin("outer")
        child = tracer.begin("child")
        tracer.end(outer)
        assert outer.closed and child.closed

    def test_find_by_name(self, tracer):
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        with tracer.span("a"):
            pass
        assert len(tracer.find("a")) == 2

    def test_sibling_spans_share_parent(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("one") as one:
                pass
            with tracer.span("two") as two:
                pass
        assert one.parent_id == outer.span_id
        assert two.parent_id == outer.span_id


class TestVirtualSpans:
    def test_placed_at_explicit_time(self, tracer):
        s = tracer.add_virtual_span(
            "io", 3.0, 0.25, track="node 0", cat="sim.io", wait_s=0.1
        )
        assert s.start_s == 3.0 and s.end_s == 3.25
        assert s.track == "node 0"
        assert s.args["wait_s"] == 0.1

    def test_partitioned_from_wall_spans(self, tracer):
        with tracer.span("wall"):
            pass
        tracer.add_virtual_span("sim", 0.0, 1.0, track="net")
        assert [s.name for s in tracer.wall_spans] == ["wall"]
        assert [s.name for s in tracer.virtual_spans] == ["sim"]

    def test_no_stack_interaction(self, tracer):
        """Virtual spans never capture the wall-span stack as parent."""
        with tracer.span("outer"):
            v = tracer.add_virtual_span("sim", 0.0, 1.0, track="x")
        assert v.parent_id is None


class TestInstants:
    def test_recorded_with_timestamp(self, tracer, clock):
        clock.advance(4.0)
        tracer.instant("decision", "collective", two_phase=True)
        (inst,) = tracer.instants
        assert inst.ts_s == pytest.approx(4.0)
        assert inst.args == {"two_phase": True}
