"""Streaming JSONL telemetry (repro.obs.journal): append-only emission,
contract-validating reads, replay into report payloads and
regress-checkable documents, and the CLI surface."""

import io
import json

import pytest

from dataclasses import replace

from repro.experiments.harness import _scaled_params
from repro.obs import (
    Journal,
    JournalError,
    Observability,
    doc_from_journal,
    payload_from_journal,
    read_journal,
)
from repro.obs.cli import main
from repro.optimizer import build_version
from repro.parallel import run_version_parallel
from repro.workloads import build_workload

N = 24
PARAMS = replace(_scaled_params(N), n_io_nodes=4)
N_NODES = 4


class TestJournal:
    def test_emit_read_round_trip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(str(path)) as j:
            j.emit("stats", data={"calls": 3})
            j.emit("nest_io", nest="adi.x", array="U1")
        events = read_journal(str(path))
        assert [e["seq"] for e in events] == [0, 1]
        assert [e["kind"] for e in events] == ["stats", "nest_io"]
        assert events[0]["data"] == {"calls": 3}

    def test_lines_are_sorted_key_json(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(str(path)) as j:
            j.emit("stats", zebra=1, alpha=2)
        line = path.read_text().strip()
        assert line == json.dumps(
            json.loads(line), sort_keys=True
        )
        assert line.index('"alpha"') < line.index('"zebra"')

    def test_append_mode_extends(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(str(path)) as j:
            j.emit("stats")
        with Journal(str(path)) as j:
            j.emit("stats")
        assert len(read_journal(str(path))) == 2

    def test_flush_every_batches(self):
        class CountingIO(io.StringIO):
            flushes = 0

            def flush(self):
                self.flushes += 1
                super().flush()

        buf = CountingIO()
        j = Journal(buf, flush_every=3)
        j.emit("a")
        j.emit("a")
        assert buf.flushes == 0
        j.emit("a")
        assert buf.flushes == 1

    def test_default_flush_every_event(self):
        buf = io.StringIO()
        j = Journal(buf)
        j.emit("a")
        assert len(buf.getvalue().splitlines()) == 1

    def test_flush_every_must_be_positive(self):
        with pytest.raises(ValueError, match="flush_every"):
            Journal(io.StringIO(), flush_every=0)

    def test_file_like_not_closed(self):
        buf = io.StringIO()
        with Journal(buf) as j:
            j.emit("a")
        assert not buf.closed


class TestReadJournal:
    def test_blank_lines_skipped(self):
        buf = io.StringIO('{"seq": 0, "kind": "a"}\n\n\n')
        assert len(read_journal(buf)) == 1

    def test_malformed_json_names_line(self):
        buf = io.StringIO('{"seq": 0, "kind": "a"}\n{oops\n')
        with pytest.raises(JournalError, match="line 2"):
            read_journal(buf)

    def test_non_object_line_rejected(self):
        with pytest.raises(JournalError, match="not a JSON object"):
            read_journal(io.StringIO("[1, 2]\n"))

    def test_missing_kind_rejected(self):
        with pytest.raises(JournalError, match="kind"):
            read_journal(io.StringIO('{"seq": 0}\n'))


class TestReplay:
    def test_payload_accumulates_and_last_wins(self):
        events = [
            {"seq": 0, "kind": "nest_io", "nest": "a", "array": "X"},
            {"seq": 1, "kind": "stats", "data": {"calls": 1}},
            {"seq": 2, "kind": "nest_io", "nest": "b", "array": "Y"},
            {"seq": 3, "kind": "redist", "nest": "a", "messages": 2},
            {"seq": 4, "kind": "stats", "data": {"calls": 9}},
            {"seq": 5, "kind": "custom", "whatever": True},
        ]
        payload = payload_from_journal(events)
        assert [r["nest"] for r in payload["io_report"]["records"]] == [
            "a", "b",
        ]
        assert payload["io_report"]["redist"][0]["messages"] == 2
        assert payload["stats"] == {"calls": 9}
        assert "custom" not in payload

    def test_doc_from_journal_folds_results(self):
        events = [
            {"seq": 0, "kind": "doc_meta", "smoke": True, "machine": "m"},
            {"seq": 1, "kind": "result", "name": "bench_a",
             "payload": {"x": 1}, "meta": {"n": 8}},
            {"seq": 2, "kind": "result", "name": "bench_b",
             "payload": {"y": 2}},
        ]
        doc = doc_from_journal(events)
        assert doc["smoke"] is True
        assert doc["machine"] == "m"
        assert doc["results"] == {"bench_a": {"x": 1}, "bench_b": {"y": 2}}
        assert doc["meta"] == {"bench_a": {"n": 8}}

    def test_result_without_name_rejected(self):
        with pytest.raises(JournalError, match="name"):
            doc_from_journal([{"seq": 0, "kind": "result", "payload": {}}])


class TestObservabilityJournal:
    def _run(self, journal):
        obs = Observability(journal=journal)
        cfg = build_version("c-opt", build_workload("adi", N))
        run_version_parallel(cfg, N_NODES, params=PARAMS, obs=obs)
        return obs

    def test_streams_while_running(self, tmp_path):
        path = tmp_path / "run.jsonl"
        obs = self._run(str(path))
        # no export() yet: records and stats already hit the file
        events = read_journal(str(path))
        kinds = {e["kind"] for e in events}
        assert "nest_io" in kinds and "stats" in kinds
        obs.export(str(tmp_path / "t.json"))
        kinds = {e["kind"] for e in read_journal(str(path))}
        assert "metrics" in kinds

    def test_replay_matches_export(self, tmp_path):
        path = tmp_path / "run.jsonl"
        trace = tmp_path / "t.json"
        obs = self._run(str(path))
        obs.export(str(trace))
        replayed = payload_from_journal(read_journal(str(path)))
        exported = json.loads(trace.read_text())
        assert replayed["io_report"]["records"] == \
            exported["io_report"]["records"]
        assert replayed["stats"] == exported["stats"]
        assert replayed["metrics"] == exported["metrics"]

    def test_no_journal_is_none(self):
        obs = Observability()
        assert obs.journal is None


class TestRegressOnJournal:
    def _write_baseline(self, tmp_path, results):
        from repro.obs.baselines import make_envelope

        doc = make_envelope(results, smoke=True)
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(doc))
        return str(path)

    def _write_journal(self, tmp_path, results):
        path = tmp_path / "run.jsonl"
        with Journal(str(path)) as j:
            j.emit("doc_meta", smoke=True)
            for name, payload in results.items():
                j.emit("result", name=name, payload=payload)
        return str(path)

    def test_check_passes_on_matching_journal(self, tmp_path, capsys):
        results = {"bench": {"calls": 42, "time_s": 1.5}}
        b = self._write_baseline(tmp_path, results)
        c = self._write_journal(tmp_path, results)
        assert main(["regress", "check", b, c]) == 0

    def test_check_fails_on_counter_drift(self, tmp_path, capsys):
        b = self._write_baseline(tmp_path, {"bench": {"calls": 42}})
        c = self._write_journal(tmp_path, {"bench": {"calls": 43}})
        assert main(["regress", "check", b, c]) == 1

    def test_missing_journal_exits_2(self, tmp_path):
        b = self._write_baseline(tmp_path, {"bench": {"calls": 1}})
        assert main([
            "regress", "check", b, str(tmp_path / "no.jsonl"),
        ]) == 2

    def test_malformed_journal_exits_2(self, tmp_path, capsys):
        b = self._write_baseline(tmp_path, {"bench": {"calls": 1}})
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{nope\n")
        assert main(["regress", "check", b, str(bad)]) == 2
        assert "error" in capsys.readouterr().err


class TestJournalCLI:
    def _journal(self, tmp_path):
        path = tmp_path / "run.jsonl"
        obs = Observability(journal=str(path))
        cfg = build_version("c-opt", build_workload("adi", N))
        run_version_parallel(cfg, N_NODES, params=PARAMS, obs=obs)
        obs.journal.flush()
        return str(path)

    def test_summary(self, tmp_path, capsys):
        path = self._journal(tmp_path)
        assert main(["journal", path]) == 0
        out = capsys.readouterr().out
        assert "event(s)" in out and "nest_io" in out

    def test_report_replay(self, tmp_path, capsys):
        path = self._journal(tmp_path)
        assert main(["journal", path, "--report"]) == 0
        out = capsys.readouterr().out
        assert "nest" in out

    def test_emit_doc(self, tmp_path, capsys):
        path = tmp_path / "r.jsonl"
        with Journal(str(path)) as j:
            j.emit("result", name="bench", payload={"x": 1})
        assert main(["journal", str(path), "--emit-doc"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["results"] == {"bench": {"x": 1}}

    def test_openmetrics_from_journal(self, tmp_path, capsys):
        from repro.obs import parse_openmetrics

        path = tmp_path / "run.jsonl"
        obs = Observability(journal=str(path))
        cfg = build_version("c-opt", build_workload("adi", N))
        run_version_parallel(cfg, N_NODES, params=PARAMS, obs=obs)
        obs.export(str(tmp_path / "t.json"))
        assert main(["journal", str(path), "--openmetrics"]) == 0
        text = capsys.readouterr().out
        parse_openmetrics(text)
        assert text.rstrip().endswith("# EOF")

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["journal", str(tmp_path / "no.jsonl")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_malformed_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main(["journal", str(bad)]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_subcommand_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main(["bogus"])
        assert exc.value.code == 2
