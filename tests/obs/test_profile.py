"""Hotspot profiler + deterministic work counters (repro.obs.profile).

The load-bearing guarantees:

- work counters are **bit-identical** across repeat runs, on the
  direct-executor, independent-parallel and two-phase-collective paths;
- ``profile=None`` (the default) and ``ProfileConfig(enabled=False)``
  leave stats and obs payloads bit-identical to an unprofiled run;
- the hotspot table attributes the pricing stack's self time and the
  collapsed-stack export validates against the folded format rules.
"""

import json

import pytest

from dataclasses import replace

from repro.engine import OOCExecutor
from repro.experiments.harness import _scaled_params
from repro.obs import (
    Observability,
    ProfileConfig,
    ProfileSession,
    WorkCounters,
    render_profile,
    validate_collapsed,
)
from repro.obs import profile as prof_mod
from repro.obs.profile import HotspotRecorder, HotspotTable, timed
from repro.optimizer import build_version
from repro.parallel import CollectiveConfig, run_version_parallel
from repro.workloads import build_workload

N = 24
PARAMS = replace(_scaled_params(N), n_io_nodes=4)
N_NODES = 4


def _cfg(workload, version="c-opt"):
    return build_version(version, build_workload(workload, N))


def _stats_fields(stats):
    return (
        stats.read_calls, stats.write_calls,
        stats.elements_read, stats.elements_written,
        stats.io_time_s, stats.compute_time_s,
        stats.redist_messages, stats.redist_elements, stats.redist_time_s,
    )


class TestWorkCounters:
    def test_delta_is_pairwise_difference(self):
        wc = WorkCounters()
        before = wc.snapshot()
        wc.plan_runs_calls += 3
        wc.priced_runs += 10
        wc.add_loop_iters("element", 7)
        wc.add_loop_iters("element", 1)
        wc.add_loop_iters("tile", 2)
        d = WorkCounters.delta(before, wc.snapshot())
        assert d["plan_runs_calls"] == 3
        assert d["priced_runs"] == 10
        assert d["sim_events"] == 0
        assert d["cache_probes"] == 0
        assert d["python_loop_iters"] == {"element": 8, "tile": 2}

    def test_zero_phases_omitted(self):
        wc = WorkCounters()
        before = wc.snapshot()
        wc.add_loop_iters("tile", 4)
        d = WorkCounters.delta(before, wc.snapshot())
        assert "element" not in d["python_loop_iters"]
        assert d["python_loop_iters"] == {"tile": 4}

    def test_global_counter_is_cumulative(self):
        before = prof_mod.WORK.snapshot()
        prof_mod.WORK.cache_probes += 5
        d = WorkCounters.delta(before, prof_mod.WORK.snapshot())
        assert d["cache_probes"] == 5


class TestHotspotRecorder:
    def test_self_time_excludes_children(self):
        t = [0.0]

        def clock():
            return t[0]

        rec = HotspotRecorder(clock)
        rec.begin("outer")
        t[0] = 1.0
        rec.begin("inner")
        t[0] = 3.0
        rec.end()          # inner: 2s self
        t[0] = 4.0
        rec.end()          # outer: 4s total, 2s self
        table = HotspotTable.from_recorder(rec)
        rows = {r.name: r for r in table.sites}
        assert rows["inner"].self_s == pytest.approx(2.0)
        assert rows["inner"].total_s == pytest.approx(2.0)
        assert rows["outer"].total_s == pytest.approx(4.0)
        assert rows["outer"].self_s == pytest.approx(2.0)

    def test_add_leaf_credits_parent(self):
        t = [0.0]
        rec = HotspotRecorder(lambda: t[0])
        rec.begin("outer")
        rec.add("leaf", 1.5, count=3)
        t[0] = 2.0
        rec.end()
        rows = {r.name: r for r in HotspotTable.from_recorder(rec).sites}
        assert rows["leaf"].count == 3
        assert rows["leaf"].self_s == pytest.approx(1.5)
        assert rows["outer"].self_s == pytest.approx(0.5)

    def test_timed_without_active_recorder_is_passthrough(self):
        assert prof_mod.ACTIVE is None
        assert timed("site", lambda a, b: a + b, 2, 3) == 5

    def test_pricing_share(self):
        rec = HotspotRecorder(lambda: 0.0)
        rec.add("pricing.plan_runs", 3.0)
        rec.add("io.record_runs", 1.0)
        rec.add("engine.footprints", 1.0)
        table = HotspotTable.from_recorder(rec)
        assert table.pricing_share() == pytest.approx(0.8)

    def test_pricing_share_empty_is_zero(self):
        table = HotspotTable.from_recorder(HotspotRecorder(lambda: 0.0))
        assert table.pricing_share() == 0.0


class TestProfileSession:
    def test_activate_restores_previous(self):
        assert prof_mod.ACTIVE is None
        s = ProfileSession(ProfileConfig())
        s.activate()
        assert prof_mod.ACTIVE is s.recorder
        inner = ProfileSession(ProfileConfig())
        inner.activate()
        assert prof_mod.ACTIVE is inner.recorder
        inner.deactivate()
        assert prof_mod.ACTIVE is s.recorder
        s.deactivate()
        assert prof_mod.ACTIVE is None

    def test_reentrant_depth(self):
        s = ProfileSession(ProfileConfig())
        with s:
            with s:
                assert prof_mod.ACTIVE is s.recorder
            # still active: the SPMD driver holds the session across
            # per-rank executor runs
            assert prof_mod.ACTIVE is s.recorder
        assert prof_mod.ACTIVE is None

    def test_finish_carries_work_delta(self):
        s = ProfileSession(ProfileConfig())
        with s:
            prof_mod.WORK.sim_events += 9
        result = s.finish()
        assert result.work["sim_events"] == 9
        assert result.pstats is None

    def test_cprofile_capture_produces_collapsed(self):
        s = ProfileSession(ProfileConfig(cprofile=True))
        with s:
            sum(i * i for i in range(1000))
        result = s.finish()
        lines = result.collapsed()
        assert lines
        validate_collapsed(lines)


class TestCollapsedValidation:
    def test_rejects_zero_count(self):
        with pytest.raises(ValueError, match="line 0"):
            validate_collapsed(["a;b 0"])

    def test_rejects_missing_count(self):
        with pytest.raises(ValueError):
            validate_collapsed(["justaframe"])

    def test_rejects_empty_frame(self):
        with pytest.raises(ValueError):
            validate_collapsed(["a;;b 5"])

    def test_rejects_space_in_stack(self):
        with pytest.raises(ValueError):
            validate_collapsed(["a b;c 5"])

    def test_accepts_valid(self):
        validate_collapsed(["main;work 120", "main 3"])


class TestDeterminism:
    """Work counters are bit-identical across repeat runs — the
    property that lets the regression gate exact-match them."""

    def _executor_work(self, workload):
        cfg = _cfg(workload)
        run = OOCExecutor(
            cfg.program, cfg.layouts, params=PARAMS, tiling=cfg.tiling,
            storage_spec=cfg.storage_spec, profile=ProfileConfig(),
        ).run()
        return run.profile.work

    def _parallel_work(self, workload, collective=None):
        run = run_version_parallel(
            _cfg(workload), N_NODES, params=PARAMS, collective=collective,
            profile=ProfileConfig(),
        )
        return run.profile.work

    @pytest.mark.parametrize("workload", ["adi", "mxm"])
    def test_direct_executor_repeatable(self, workload):
        assert self._executor_work(workload) == self._executor_work(workload)

    @pytest.mark.parametrize("workload", ["adi", "mxm"])
    def test_independent_repeatable(self, workload):
        assert self._parallel_work(workload) == self._parallel_work(workload)

    @pytest.mark.parametrize("workload", ["adi", "mxm"])
    def test_two_phase_repeatable(self, workload):
        coll = CollectiveConfig(mode="always", simulator="event")
        a = self._parallel_work(workload, coll)
        b = self._parallel_work(workload, coll)
        assert a == b
        assert a["sim_events"] > 0

    def test_counters_are_ints(self):
        work = self._parallel_work("adi")
        for key in ("plan_runs_calls", "priced_runs", "sim_events",
                    "cache_probes"):
            assert isinstance(work[key], int)
        for v in work["python_loop_iters"].values():
            assert isinstance(v, int)


class TestOffIsBitIdentical:
    """profile=None (default) and a disabled config leave everything
    bit-identical — the acceptance pin on adi and mxm."""

    @pytest.mark.parametrize("workload", ["adi", "mxm"])
    def test_stats_identical(self, workload):
        base = run_version_parallel(_cfg(workload), N_NODES, params=PARAMS)
        off = run_version_parallel(
            _cfg(workload), N_NODES, params=PARAMS,
            profile=ProfileConfig(enabled=False),
        )
        on = run_version_parallel(
            _cfg(workload), N_NODES, params=PARAMS, profile=ProfileConfig(),
        )
        assert _stats_fields(off.total_stats) == _stats_fields(
            base.total_stats
        )
        assert off.time_s == base.time_s
        assert off.profile is None
        # profiling measures; it must never change the accounting
        assert _stats_fields(on.total_stats) == _stats_fields(
            base.total_stats
        )

    @pytest.mark.parametrize("workload", ["adi", "mxm"])
    def test_obs_payload_identical(self, workload):
        # wall-time spans are real clock measurements and never repeat
        # exactly; everything else in the payload is modeled and must be
        # byte-identical with profiling left off
        from repro.obs import ObsConfig

        def payload(profile):
            obs = Observability(ObsConfig(wall_time=False))
            run_version_parallel(
                _cfg(workload), N_NODES, params=PARAMS, obs=obs,
                profile=profile,
            )
            return json.dumps(obs.to_payload(), sort_keys=True, default=str)

        assert payload(None) == payload(ProfileConfig(enabled=False))

    def test_profiled_payload_adds_only_profile_and_work(self):
        obs_off = Observability()
        run_version_parallel(_cfg("adi"), N_NODES, params=PARAMS, obs=obs_off)
        obs_on = Observability()
        run_version_parallel(
            _cfg("adi"), N_NODES, params=PARAMS, obs=obs_on,
            profile=ProfileConfig(),
        )
        off_p = obs_off.to_payload()
        on_p = obs_on.to_payload()
        assert "profile" not in off_p
        assert "profile" in on_p
        extra = {
            k for k in on_p["metrics"] if k not in off_p["metrics"]
        }
        assert extra == {
            k for k in on_p["metrics"] if k.startswith("work.")
        }


class TestParallelProfile:
    def test_pricing_stack_dominates_sites(self):
        run = run_version_parallel(
            _cfg("adi"), N_NODES, params=PARAMS, profile=ProfileConfig(),
        )
        table = run.profile.hotspots
        assert table.sites
        assert table.pricing_share() >= 0.5

    def test_work_published_into_metrics(self):
        obs = Observability()
        run = run_version_parallel(
            _cfg("adi"), N_NODES, params=PARAMS, obs=obs,
            profile=ProfileConfig(),
        )
        work = run.profile.work
        reg = dict(obs.metrics.items())
        assert reg["work.plan_runs_calls"].value == work["plan_runs_calls"]
        assert reg["work.priced_runs"].value == work["priced_runs"]
        for phase, n in work["python_loop_iters"].items():
            key = f"work.python_loop_iters{{phase={phase}}}"
            assert reg[key].value == n

    def test_caller_owned_session_not_finished_by_driver(self):
        session = ProfileSession(ProfileConfig())
        with session:
            run = run_version_parallel(
                _cfg("adi"), N_NODES, params=PARAMS, profile=session,
            )
        assert run.profile is None
        result = session.finish()
        assert result.work["plan_runs_calls"] > 0

    def test_span_aggregation_section(self):
        obs = Observability()
        run = run_version_parallel(
            _cfg("adi"), N_NODES, params=PARAMS, obs=obs,
            profile=ProfileConfig(),
        )
        names = {r.name for r in run.profile.hotspots.spans}
        assert any(n.startswith("rank ") for n in names)


class TestRender:
    def test_render_includes_counters_and_share(self):
        run = run_version_parallel(
            _cfg("adi"), N_NODES, params=PARAMS, profile=ProfileConfig(),
        )
        text = run.profile.render_top()
        assert "pricing stack share:" in text
        assert "work.plan_runs_calls" in text
        assert "work.python_loop_iters{phase=element}" in text

    def test_render_round_trips_through_json(self):
        run = run_version_parallel(
            _cfg("adi"), N_NODES, params=PARAMS, profile=ProfileConfig(),
        )
        blob = json.loads(json.dumps(run.profile.to_dict()))
        assert render_profile(blob) == render_profile(run.profile.to_dict())

    def test_render_empty_capture(self):
        assert "empty capture" in render_profile(
            {"hotspots": {"sites": [], "spans": []}, "work": {}}
        )

    def test_truncation(self):
        rows = [
            {"name": f"s{i}", "count": 1, "total_s": 1.0, "self_s": 1.0}
            for i in range(30)
        ]
        text = render_profile(
            {"hotspots": {"sites": rows, "spans": []},
             "work": {}},
            top=5,
        )
        assert "25 more site(s)" in text


class TestProfileCLI:
    def test_profile_and_top(self, tmp_path, capsys):
        from repro.obs.cli import main

        trace = tmp_path / "t.json"
        folded = tmp_path / "p.folded"
        assert main([
            "profile", "--workload", "adi", "--n", str(N),
            "--nodes", str(N_NODES), "--folded", str(folded),
            "--out", str(trace),
        ]) == 0
        out = capsys.readouterr().out
        assert "pricing stack share:" in out
        validate_collapsed(
            [ln for ln in folded.read_text().splitlines() if ln]
        )
        assert main(["top", str(trace)]) == 0
        assert "work.plan_runs_calls" in capsys.readouterr().out

    def test_profile_unknown_workload_exits_2(self, capsys):
        from repro.obs.cli import main

        assert main(["profile", "--workload", "nope"]) == 2
        assert "error" in capsys.readouterr().err

    def test_profile_unknown_version_exits_2(self, capsys):
        from repro.obs.cli import main

        assert main(["profile", "--version", "nope"]) == 2
        assert "error" in capsys.readouterr().err

    def test_top_without_profile_section_exits_2(self, tmp_path, capsys):
        from repro.obs.cli import main

        path = tmp_path / "t.json"
        path.write_text("{}")
        assert main(["top", str(path)]) == 2
        assert "no profile section" in capsys.readouterr().err

    def test_top_missing_file_exits_2(self, tmp_path):
        from repro.obs.cli import main

        assert main(["top", str(tmp_path / "no.json")]) == 2

    def test_top_malformed_json_exits_2(self, tmp_path):
        from repro.obs.cli import main

        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert main(["top", str(path)]) == 2
