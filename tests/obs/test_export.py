"""Chrome trace-event export: schema, the two clocks, file round-trip."""

import json

import pytest

from repro.obs import (
    REQUIRED_EVENT_KEYS,
    Observability,
    Tracer,
    chrome_trace_events,
    load_trace,
    validate_trace_events,
    write_trace,
)
from repro.obs.export import SIM_PID, WALL_PID


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def _tracer_with_both_clocks():
    clock = FakeClock()
    t = Tracer(clock=clock)
    with t.span("compile", "pipeline"):
        clock.t += 0.001
    t.instant("decision", "collective", two_phase=False)
    t.add_virtual_span("io", 0.5, 0.25, track="node 0", cat="sim.io")
    t.add_virtual_span("serve", 0.5, 0.25, track="io 2", cat="sim.io")
    return t


class TestSchema:
    def test_every_event_has_required_keys(self):
        events = chrome_trace_events(_tracer_with_both_clocks())
        for ev in events:
            for key in REQUIRED_EVENT_KEYS:
                assert key in ev, f"{ev['name']} missing {key}"
        validate_trace_events(events)  # must not raise

    def test_validate_rejects_missing_keys(self):
        with pytest.raises(ValueError, match="missing"):
            validate_trace_events([{"ph": "X", "name": "bad"}])

    def test_timestamps_are_microseconds(self):
        events = chrome_trace_events(_tracer_with_both_clocks())
        wall = [
            e for e in events if e["ph"] == "X" and e["pid"] == WALL_PID
        ]
        assert wall[0]["dur"] == pytest.approx(1000.0)  # 1 ms -> 1000 us

    def test_instants_marked_thread_scoped(self):
        events = chrome_trace_events(_tracer_with_both_clocks())
        (inst,) = [e for e in events if e["ph"] == "i"]
        assert inst["s"] == "t"


class TestTwoClocks:
    def test_wall_and_sim_processes_separated(self):
        events = chrome_trace_events(_tracer_with_both_clocks())
        spans = [e for e in events if e["ph"] == "X"]
        assert {e["pid"] for e in spans} == {WALL_PID, SIM_PID}

    def test_virtual_tracks_get_thread_names(self):
        events = chrome_trace_events(_tracer_with_both_clocks())
        names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
            and e["pid"] == SIM_PID
        }
        assert names == {"node 0", "io 2"}

    def test_sim_spans_at_virtual_timestamps(self):
        events = chrome_trace_events(_tracer_with_both_clocks())
        sim = [e for e in events if e["ph"] == "X" and e["pid"] == SIM_PID]
        assert all(e["ts"] == pytest.approx(0.5e6) for e in sim)

    def test_no_sim_process_without_virtual_spans(self):
        t = Tracer(clock=FakeClock())
        with t.span("only-wall"):
            pass
        events = chrome_trace_events(t)
        assert all(e["pid"] == WALL_PID for e in events)


class TestFileRoundTrip:
    def test_write_validates_then_loads(self, tmp_path):
        obs = Observability()
        with obs.span("s"):
            pass
        path = tmp_path / "trace.json"
        payload = obs.export(str(path))
        loaded = load_trace(str(path))
        assert loaded["traceEvents"] == json.loads(
            json.dumps(payload["traceEvents"])
        )
        assert loaded["displayTimeUnit"] == "ms"

    def test_write_rejects_bad_payload(self, tmp_path):
        with pytest.raises(ValueError):
            write_trace(
                str(tmp_path / "bad.json"),
                {"traceEvents": [{"ph": "X"}]},
            )

    def test_payload_is_json_object_form(self):
        """Perfetto needs the JSON-object form with a traceEvents list."""
        obs = Observability()
        payload = obs.to_payload()
        assert isinstance(payload["traceEvents"], list)
        assert "metrics" in payload and "io_report" in payload


class TestKeyEncoding:
    """Tuple/scalar dict keys survive the baseline JSON round trip."""

    @pytest.mark.parametrize("key", [
        "plain",
        ("c-opt", 2, True),
        (1, 0),
        2.5,
        7,
        ("nested", (1, 2)),
    ])
    def test_round_trip(self, key):
        from repro.obs import decode_key, encode_key

        encoded = encode_key(key)
        assert isinstance(encoded, str)
        assert decode_key(encoded) == key

    def test_equal_keys_encode_identically(self):
        from repro.obs import encode_key

        assert encode_key((1, 0)) == encode_key((1, 0))
        assert encode_key((1, 0)) != encode_key((0, 1))

    def test_sanitize_encodes_keys_and_survives_json(self):
        from repro.obs import sanitize

        doc = sanitize({
            ("adi", 4): {"io_time_s": 1.5},
            16: [1, 2],
            "s": {True, False},
        })
        json.dumps(doc)  # must not raise
        assert doc["[\"adi\", 4]"] == {"io_time_s": 1.5}
        assert doc["16"] == [1, 2]
        assert doc["s"] == [False, True]  # sets serialize sorted

    def test_sanitize_handles_numpy_and_dataclasses(self):
        import numpy as np

        from dataclasses import dataclass

        from repro.obs import sanitize

        @dataclass
        class Row:
            n: int

        out = sanitize({
            "a": np.int64(3),
            "b": np.array([1.0, 2.0]),
            "c": Row(5),
        })
        json.dumps(out)
        assert out["a"] == 3
        assert out["b"] == [1.0, 2.0]
        assert out["c"] == {"n": 5}
