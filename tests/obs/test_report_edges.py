"""Edge cases for the report-view totals: empty record lists, drift
rows with predicted_calls=None, and degraded-nest mixes — in every case
the view's measured totals must equal the folded IOStats exactly."""

from dataclasses import replace

from repro.experiments.harness import _scaled_params
from repro.faults import FaultConfig, FaultPlan, ResiliencePolicy
from repro.obs import (
    CostDriftRecord,
    NestIORecord,
    Observability,
    RedistRecord,
    build_drift,
    drift_totals,
    optimality_totals,
    report_totals,
)
from repro.optimizer import build_version
from repro.parallel import CollectiveConfig, run_version_parallel
from repro.runtime import IOStats
from repro.workloads import build_workload

TOTAL_KEYS = (
    "read_calls", "write_calls", "elements_read", "elements_written",
)


def _fold_records(records):
    return IOStats.fold(
        IOStats(r.read_calls, r.write_calls,
                r.elements_read, r.elements_written)
        for r in records
    )


def _assert_totals_equal_stats(totals, stats):
    sd = stats.to_dict()
    assert all(totals[k] == sd.get(k) for k in TOTAL_KEYS), (totals, sd)


class TestEmpty:
    def test_report_totals_empty(self):
        totals = report_totals([])
        assert totals == {k: 0 for k in TOTAL_KEYS}
        _assert_totals_equal_stats(totals, IOStats())

    def test_drift_totals_empty(self):
        assert drift_totals([]) == {k: 0 for k in TOTAL_KEYS}

    def test_optimality_totals_empty(self):
        assert optimality_totals([]) == {k: 0 for k in TOTAL_KEYS}

    def test_build_drift_empty_records_keeps_predictions_visible(self):
        drift = build_drift([], {"n1": {"A": 12.5}})
        assert len(drift) == 1
        assert drift[0].path == "unexecuted"
        assert drift[0].predicted_calls == 12.5
        assert drift_totals(drift) == {k: 0 for k in TOTAL_KEYS}


class TestPredictedNone:
    def test_drift_rows_without_prediction_still_total(self):
        records = [
            NestIORecord("n1", "A", 4, 2, 40, 20, 0.1),
            NestIORecord("n1", "B", 3, 0, 30, 0, 0.1),
        ]
        drift = build_drift(records, {"n1": {"A": 6.0}})
        by_array = {r.array: r for r in drift}
        assert by_array["B"].predicted_calls is None
        assert by_array["B"].error is None
        _assert_totals_equal_stats(
            drift_totals(drift), _fold_records(records)
        )

    def test_explicit_none_prediction_record(self):
        r = CostDriftRecord(
            nest="n", array="A", predicted_calls=None,
            read_calls=2, write_calls=1, elements_read=8, elements_written=4,
        )
        assert r.error is None
        assert r.measured_calls == 3
        totals = drift_totals([r])
        assert totals["elements_read"] == 8
        assert totals["elements_written"] == 4

    def test_mixed_soup_skips_redist_records(self):
        records = [
            NestIORecord("n1", "A", 1, 1, 10, 10, 0.0),
            RedistRecord("n1", messages=4, elements=100, time_s=0.2),
        ]
        totals = report_totals(records)
        assert totals["elements_read"] == 10
        assert totals["elements_written"] == 10


class TestDegradedMix:
    """A fault plan that degrades some two-phase nests to independent
    I/O: records carry mixed paths, but totals still equal the folded
    stats exactly."""

    N = 24
    N_NODES = 4

    def _run(self):
        cfg = build_version("c-opt", build_workload("adi", self.N))
        params = replace(_scaled_params(self.N), n_io_nodes=4)
        faults = FaultConfig(
            plan=FaultPlan(seed=7, failed_nodes=(0,)),
            policy=ResiliencePolicy(degrade_collective=True),
        )
        obs = Observability()
        run = run_version_parallel(
            cfg, self.N_NODES, params=params,
            collective=CollectiveConfig(), faults=faults, obs=obs,
        )
        return run, obs

    def test_degraded_mix_totals_exact(self):
        run, obs = self._run()
        stats = run.total_stats
        assert stats.degraded_nests > 0, "plan must actually degrade"
        paths = {r.path for r in obs.report.records}
        assert "independent" in paths  # the degraded nests
        _assert_totals_equal_stats(report_totals(obs.report.records), stats)
        _assert_totals_equal_stats(drift_totals(obs.report.drift), stats)
        _assert_totals_equal_stats(
            optimality_totals(obs.report.optimality), stats
        )

    def test_degraded_bounds_still_hold(self):
        run, obs = self._run()
        for r in obs.report.optimality:
            assert r.bound_elements is not None
            assert r.bound_elements <= r.measured_elements + 1e-9
