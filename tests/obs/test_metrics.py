"""Metrics registry: counters, gauges, histograms, labeled keys."""

import pytest

from repro.obs import Histogram, MetricsRegistry, PercentileError


class TestCounter:
    def test_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("io.read_calls").inc()
        reg.counter("io.read_calls").inc(4)
        assert reg.counter("io.read_calls").value == 5

    def test_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_to_dict(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        assert reg.to_dict()["c"] == {"type": "counter", "value": 3}


class TestGauge:
    def test_last_set_wins(self):
        reg = MetricsRegistry()
        reg.gauge("peak").set(10)
        reg.gauge("peak").set(7)
        assert reg.gauge("peak").value == 7


class TestHistogram:
    def test_exact_bucket_boundaries(self):
        """A value equal to a bound lands in that bound's bucket
        (bucket i counts values <= bounds[i])."""
        h = Histogram(bounds=[1, 2, 4])
        for v in (1, 2, 2, 4, 5):
            h.observe(v)
        assert h.bucket_counts == [1, 2, 1, 1]

    def test_summary_stats(self):
        h = Histogram(bounds=[10])
        h.observe_many([2, 4, 6])
        assert h.count == 3
        assert h.total == 12
        assert h.min == 2 and h.max == 6
        assert h.mean == pytest.approx(4.0)

    def test_default_bounds_cover_large_values(self):
        h = Histogram()
        h.observe(2**40)  # beyond the last bound -> overflow bucket
        assert h.bucket_counts[-1] == 1

    def test_empty_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram(bounds=[])

    def test_registry_custom_bounds_first_call(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", bounds=[1.0, 2.0])
        assert h.bounds == (1.0, 2.0)
        assert reg.histogram("lat") is h


class TestRegistryKeys:
    def test_labels_become_key(self):
        reg = MetricsRegistry()
        reg.counter("io.calls", node=3).inc()
        reg.counter("io.calls", node=4).inc(2)
        assert "io.calls{node=3}" in reg
        assert "io.calls{node=4}" in reg
        assert reg.counter("io.calls", node=3).value == 1

    def test_label_order_canonical(self):
        reg = MetricsRegistry()
        reg.counter("c", b=1, a=2).inc()
        assert "c{a=2,b=1}" in reg

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_to_dict_sorted_and_json_ready(self):
        import json

        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.gauge("a").set(1)
        reg.histogram("c").observe(3)
        d = reg.to_dict()
        assert list(d) == sorted(d)
        json.dumps(d)  # must not raise


class TestPercentiles:
    def test_empty_is_none(self):
        h = Histogram()
        assert h.percentile(0.5) is None
        assert h.percentiles == {"p50": None, "p95": None, "p99": None}

    def test_q_outside_unit_interval_raises(self):
        h = Histogram()
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(-0.1)
        with pytest.raises(ValueError):
            h.percentile(1.5)

    def test_out_of_range_raises_named_error(self):
        """The named subclass pins the error contract (it stays a
        ValueError, so pre-existing handlers keep working), and fires
        even on an empty histogram — validation precedes emptiness."""
        h = Histogram()
        with pytest.raises(PercentileError, match=r"\[0, 1\]"):
            h.percentile(1.5)
        assert issubclass(PercentileError, ValueError)

    def test_q_zero_is_min_q_one_is_max(self):
        h = Histogram()
        h.observe_many([3.0, 7.0, 11.0])
        assert h.percentile(0.0) == 3.0
        assert h.percentile(1.0) == 11.0

    def test_single_value_reports_that_value(self):
        h = Histogram()
        h.observe(42.0)
        assert h.percentile(0.5) == 42.0
        assert h.percentile(0.99) == 42.0

    def test_monotone_and_clamped_to_observed_range(self):
        h = Histogram()
        h.observe_many(float(v) for v in range(1, 101))
        p50, p95, p99 = (h.percentile(q) for q in (0.5, 0.95, 0.99))
        assert p50 <= p95 <= p99
        assert h.min <= p50 and p99 <= h.max
        # the median of 1..100 interpolates near the middle
        assert 30.0 <= p50 <= 70.0
        assert p95 >= 80.0

    def test_to_dict_carries_percentiles(self):
        h = Histogram()
        h.observe_many([1.0, 2.0, 3.0])
        d = h.to_dict()
        for p in ("p50", "p95", "p99"):
            assert d[p] == h.percentiles[p]

    def test_stable_under_bucket_layout_change(self):
        """The regression gate compares percentiles, not buckets: two
        layouts over the same data must agree to bucket resolution."""
        data = [float(v) for v in range(1, 65)]
        coarse = Histogram(bounds=[8.0, 32.0])
        fine = Histogram(bounds=[4.0, 8.0, 16.0, 32.0, 48.0])
        coarse.observe_many(data)
        fine.observe_many(data)
        assert coarse.percentile(0.5) == pytest.approx(
            fine.percentile(0.5), rel=0.3
        )
        assert coarse.percentile(0.5) == pytest.approx(32.5, rel=0.3)
