"""Metrics registry: counters, gauges, histograms, labeled keys."""

import pytest

from repro.obs import Histogram, MetricsRegistry


class TestCounter:
    def test_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("io.read_calls").inc()
        reg.counter("io.read_calls").inc(4)
        assert reg.counter("io.read_calls").value == 5

    def test_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_to_dict(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        assert reg.to_dict()["c"] == {"type": "counter", "value": 3}


class TestGauge:
    def test_last_set_wins(self):
        reg = MetricsRegistry()
        reg.gauge("peak").set(10)
        reg.gauge("peak").set(7)
        assert reg.gauge("peak").value == 7


class TestHistogram:
    def test_exact_bucket_boundaries(self):
        """A value equal to a bound lands in that bound's bucket
        (bucket i counts values <= bounds[i])."""
        h = Histogram(bounds=[1, 2, 4])
        for v in (1, 2, 2, 4, 5):
            h.observe(v)
        assert h.bucket_counts == [1, 2, 1, 1]

    def test_summary_stats(self):
        h = Histogram(bounds=[10])
        h.observe_many([2, 4, 6])
        assert h.count == 3
        assert h.total == 12
        assert h.min == 2 and h.max == 6
        assert h.mean == pytest.approx(4.0)

    def test_default_bounds_cover_large_values(self):
        h = Histogram()
        h.observe(2**40)  # beyond the last bound -> overflow bucket
        assert h.bucket_counts[-1] == 1

    def test_empty_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram(bounds=[])

    def test_registry_custom_bounds_first_call(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", bounds=[1.0, 2.0])
        assert h.bounds == (1.0, 2.0)
        assert reg.histogram("lat") is h


class TestRegistryKeys:
    def test_labels_become_key(self):
        reg = MetricsRegistry()
        reg.counter("io.calls", node=3).inc()
        reg.counter("io.calls", node=4).inc(2)
        assert "io.calls{node=3}" in reg
        assert "io.calls{node=4}" in reg
        assert reg.counter("io.calls", node=3).value == 1

    def test_label_order_canonical(self):
        reg = MetricsRegistry()
        reg.counter("c", b=1, a=2).inc()
        assert "c{a=2,b=1}" in reg

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_to_dict_sorted_and_json_ready(self):
        import json

        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.gauge("a").set(1)
        reg.histogram("c").observe(3)
        d = reg.to_dict()
        assert list(d) == sorted(d)
        json.dumps(d)  # must not raise
