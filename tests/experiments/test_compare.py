import pytest

from repro.experiments.compare import _classify, table2_scorecard
from repro.experiments.paper_data import (
    PAPER_TABLE2,
    PAPER_TABLE2_AVERAGES,
    PAPER_TABLE3,
)
from repro.optimizer import VERSION_NAMES


class TestPaperData:
    def test_all_ten_codes_present(self):
        assert set(PAPER_TABLE2) == {
            "mat", "mxm", "adi", "vpenta", "btrix",
            "emit", "syr2k", "htribk", "gfunp", "trans",
        }
        assert set(PAPER_TABLE3) == set(PAPER_TABLE2)

    def test_all_versions_per_code(self):
        for w, row in PAPER_TABLE2.items():
            assert set(row) == set(VERSION_NAMES), w
        for w, block in PAPER_TABLE3.items():
            assert set(block) == set(VERSION_NAMES), w
            for curve in block.values():
                assert set(curve) == {16, 32, 64, 128}

    def test_published_averages_match_transcription(self):
        for v, avg in PAPER_TABLE2_AVERAGES.items():
            computed = sum(PAPER_TABLE2[w][v] for w in PAPER_TABLE2) / 10
            assert computed == pytest.approx(avg, abs=0.1), v

    def test_headline_numbers(self):
        # spot checks against the paper's text
        assert PAPER_TABLE2["adi"]["l-opt"] == 22.8
        assert PAPER_TABLE2["trans"]["d-opt"] == 48.2
        assert PAPER_TABLE2["gfunp"]["c-opt"] == 46.9
        assert PAPER_TABLE3["trans"]["d-opt"][128] == 113.0


class TestClassify:
    def test_bands(self):
        assert _classify(50) == "improves"
        assert _classify(100) == "neutral"
        assert _classify(99) == "neutral"
        assert _classify(130) == "hurts"


class TestScorecard:
    def test_with_synthetic_perfect_measurement(self):
        text, summary = table2_scorecard(measured=PAPER_TABLE2)
        assert summary["agreement"] == 1.0
        assert summary["average_order_matches"]
        assert "100%" in text

    def test_with_synthetic_inverted_measurement(self):
        inverted = {
            w: {v: (200.0 - pct if v != "col" else pct)
                for v, pct in row.items()}
            for w, row in PAPER_TABLE2.items()
        }
        _, summary = table2_scorecard(measured=inverted)
        assert summary["agreement"] < 1.0
        assert summary["disagreements"]
