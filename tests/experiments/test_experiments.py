import pytest

from repro.experiments import (
    ExperimentSettings,
    figure1,
    figure2,
    figure3,
    run_table2_row,
    run_table3_block,
    table1,
)
from repro.experiments.harness import PAPER_N, _scaled_params, normalize_row
from repro.experiments.report import (
    arithmetic_mean,
    fmt,
    format_table,
    geometric_mean,
)
from repro.runtime import MachineParams

FAST = ExperimentSettings(n=32, table3_nodes=(2, 4))


class TestScaledParams:
    def test_identity_at_paper_scale(self):
        p = _scaled_params(PAPER_N)
        base = MachineParams()
        assert p.memory_fraction == base.memory_fraction
        assert p.stripe_bytes == base.stripe_bytes
        assert p.max_request_bytes == base.max_request_bytes
        assert p.io_latency_s == pytest.approx(base.io_latency_s)

    def test_row_proportional_scaling(self):
        p = _scaled_params(PAPER_N // 2)
        base = MachineParams()
        assert p.stripe_bytes == base.stripe_bytes // 2
        assert p.max_request_bytes == base.max_request_bytes // 2
        assert p.io_latency_s == pytest.approx(base.io_latency_s / 2)
        assert p.memory_fraction == base.memory_fraction // 2

    def test_fraction_floor(self):
        assert _scaled_params(32).memory_fraction == 4

    def test_sieve_window_is_break_even(self):
        p = _scaled_params(256)
        assert p.sieve_gap_bytes == int(p.io_latency_s * p.io_bandwidth_bps)


class TestSettings:
    def test_defaults(self):
        s = ExperimentSettings()
        assert s.n == 128
        assert s.table2_nodes == 16
        assert s.params is not None

    def test_with_n_rescales(self):
        s = ExperimentSettings(n=128).with_n(256)
        assert s.n == 256
        assert s.params.stripe_bytes == _scaled_params(256).stripe_bytes


class TestReport:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("a")
        assert all(len(l) >= 5 for l in lines[1:])

    def test_fmt(self):
        assert fmt(1.234) == "1.2"
        assert fmt(1.234, 2) == "1.23"

    def test_means(self):
        assert arithmetic_mean([1, 3]) == 2
        assert geometric_mean([1, 4]) == 2
        assert str(arithmetic_mean([])) == "nan"


class TestTable1:
    def test_contains_all_rows(self):
        text = table1()
        for name in ("mat", "mxm", "adi", "vpenta", "btrix",
                     "emit", "syr2k", "htribk", "gfunp", "trans"):
            assert name in text
        assert "Livermore" in text and "Eispack" in text


class TestHarness:
    def test_run_table2_row_returns_all_versions(self):
        times = run_table2_row("trans", FAST)
        assert set(times) == {"col", "row", "l-opt", "d-opt", "c-opt", "h-opt"}
        assert all(t > 0 for t in times.values())

    def test_normalize_row(self):
        norm = normalize_row({"col": 2.0, "c-opt": 1.0})
        assert norm["col"] == 2.0
        assert norm["c-opt"] == 50.0

    def test_table3_block_structure(self):
        block = run_table3_block("trans", FAST, versions=("col", "d-opt"))
        assert set(block) == {"col", "d-opt"}
        assert set(block["col"]) == {2, 4}
        assert all(s > 0 for s in block["col"].values())

    def test_trans_shape_at_small_scale(self):
        times = run_table2_row("trans", FAST)
        norm = normalize_row(times)
        assert norm["d-opt"] < 100.0
        assert norm["l-opt"] == pytest.approx(100.0, abs=2)


class TestFigures:
    def test_figure1_components(self):
        text = figure1()
        assert "2 connected component(s)" in text
        assert "['U', 'V', 'W']" in text

    def test_figure2_grids(self):
        text = figure2()
        assert "row-major" in text and "blocked" in text
        # row-major 4x4 file order starts 0 1 2 3
        assert " 0  1  2  3" in text

    def test_figure2_grid_is_permutation(self):
        from repro.experiments.figure2 import FIGURE2_LAYOUTS, render_layout

        for name, _, layout in FIGURE2_LAYOUTS:
            grid = render_layout(layout, 4)
            numbers = sorted(int(x) for x in grid.split())
            assert numbers == list(range(16)), name

    def test_figure3_counts_match_paper(self):
        text, result = figure3()
        assert result.calls_per_tile_traditional == 4
        assert result.calls_per_tile_ooc == 2
        assert result.total_calls_ooc < result.total_calls_traditional
        assert "(paper: 4)" in text


class TestCLI:
    def test_main_table1(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_main_figure3(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["figure3"]) == 0
        assert "tile access patterns" in capsys.readouterr().out

    def test_main_rejects_unknown(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["table9"])
