import csv
import io
import json

import pytest

from repro.experiments.export import (
    table2_to_csv,
    table2_to_json,
    table3_to_csv,
    table3_to_json,
)
from repro.experiments.harness import ExperimentSettings

SETTINGS = ExperimentSettings(n=32)

T2_DATA = {
    "trans": {"col": 1.0, "row": 90.0, "l-opt": 100.0,
              "d-opt": 50.0, "c-opt": 50.0, "h-opt": 48.0},
}
T3_DATA = {
    "trans": {
        "col": {16: 4.0, 32: 4.1},
        "c-opt": {16: 14.0, 32: 25.0},
    }
}


class TestTable2Export:
    def test_json_roundtrip(self):
        doc = json.loads(table2_to_json(T2_DATA, SETTINGS))
        assert doc["experiment"] == "table2"
        assert doc["rows"]["trans"]["d-opt"] == 50.0
        assert doc["settings"]["n"] == 32
        assert doc["settings"]["machine"]["n_io_nodes"] == 64

    def test_csv_structure(self):
        text = table2_to_csv(T2_DATA)
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0][0] == "program"
        assert rows[1][0] == "trans"
        assert float(rows[1][rows[0].index("h-opt")]) == 48.0


class TestTable3Export:
    def test_json_structure(self):
        doc = json.loads(table3_to_json(T3_DATA, SETTINGS))
        assert doc["speedups"]["trans"]["c-opt"]["16"] == 14.0

    def test_csv_structure(self):
        rows = list(csv.reader(io.StringIO(table3_to_csv(T3_DATA))))
        assert rows[0] == ["program", "version", "16", "32"]
        assert rows[1][:2] == ["trans", "col"]


class TestCLIExport:
    def test_json_and_csv_written(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        jpath = tmp_path / "t2.json"
        cpath = tmp_path / "t2.csv"
        assert main([
            "table2", "--n", "32", "--workloads", "trans",
            "--json", str(jpath), "--csv", str(cpath),
        ]) == 0
        doc = json.loads(jpath.read_text())
        assert "trans" in doc["rows"]
        assert "program" in cpath.read_text().splitlines()[0]
