import pytest

from repro.experiments.compare import table3_scorecard
from repro.experiments.harness import ExperimentSettings
from repro.experiments.paper_data import PAPER_TABLE3


def _synthetic(optimized_wins: bool):
    """Measured blocks where optimized versions do/don't out-scale."""
    hi, lo = (20.0, 5.0) if optimized_wins else (5.0, 20.0)
    return {
        w: {
            v: {4: (hi if v in ("d-opt", "c-opt", "h-opt") else lo)}
            for v in ("col", "row", "l-opt", "d-opt", "c-opt", "h-opt")
        }
        for w in PAPER_TABLE3
    }


SETTINGS = ExperimentSettings(n=32, table3_nodes=(4,))


class TestTable3Scorecard:
    def test_optimized_winning_agrees(self):
        text, summary = table3_scorecard(SETTINGS, measured=_synthetic(True))
        assert summary["agreement"] == 1.0
        assert "agreement: 10/10" in text

    def test_optimized_losing_flags_disagreements(self):
        _, summary = table3_scorecard(SETTINGS, measured=_synthetic(False))
        # the paper has optimized >= unoptimized on every code at 128
        assert summary["agreement"] < 1.0

    def test_uses_largest_node_count(self):
        measured = _synthetic(True)
        text, _ = table3_scorecard(SETTINGS, measured=measured)
        assert "ours opt@4" in text
