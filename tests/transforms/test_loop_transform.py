import pytest

from repro.ir import ProgramBuilder
from repro.linalg import IMat
from repro.transforms import (
    apply_loop_transform,
    interchange_matrix,
    permutation_matrix,
    reversal_matrix,
    skew_matrix,
    transformed_loop_vars,
)


def copy_nest(n_default=5):
    b = ProgramBuilder("t", params=("N",), default_binding={"N": n_default})
    N = b.param("N")
    A = b.array("A", (N, N))
    B = b.array("B", (N, N))
    with b.nest("n") as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", 1, N)
        nb.assign(A[i, j], B[j, i] + 1.0)
    return b.build().nests[0]


def stencil_nest():
    b = ProgramBuilder("t", params=("N",), default_binding={"N": 5})
    N = b.param("N")
    A = b.array("A", (N, N))
    with b.nest("n") as nb:
        i = nb.loop("i", 2, N)
        j = nb.loop("j", 2, N)
        nb.assign(A[i, j], A[i - 1, j] + 1.0)
    return b.build().nests[0]


class TestElementary:
    def test_permutation(self):
        t = permutation_matrix([2, 0, 1])
        assert t.matvec((10, 20, 30)) == (30, 10, 20)

    def test_bad_permutation(self):
        with pytest.raises(ValueError):
            permutation_matrix([0, 0, 1])

    def test_interchange(self):
        t = interchange_matrix(3, 0, 2)
        assert t.matvec((1, 2, 3)) == (3, 2, 1)

    def test_reversal(self):
        t = reversal_matrix(2, 1)
        assert t.matvec((1, 2)) == (1, -2)

    def test_skew(self):
        t = skew_matrix(2, 0, 1, 1)
        assert t.matvec((3, 4)) == (3, 7)
        with pytest.raises(ValueError):
            skew_matrix(2, 1, 1)

    def test_all_unimodular(self):
        for t in (
            permutation_matrix([1, 0]),
            reversal_matrix(2, 0),
            skew_matrix(3, 0, 2, -2),
        ):
            assert abs(t.det()) == 1


class TestTransformedLoopVars:
    def test_avoids_clashes(self):
        nest = copy_nest()
        names = transformed_loop_vars(nest)
        assert len(names) == 2
        assert not set(names) & {"i", "j", "N"}

    def test_paper_uses_u_v(self):
        assert transformed_loop_vars(copy_nest()) == ("u", "v")


class TestApplyLoopTransform:
    def test_identity_returns_same(self):
        nest = copy_nest()
        assert apply_loop_transform(nest, IMat.identity(2)) is nest

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            apply_loop_transform(copy_nest(), IMat.identity(3))

    def test_non_unimodular_rejected(self):
        with pytest.raises(ValueError):
            apply_loop_transform(copy_nest(), IMat([[2, 0], [0, 1]]))

    def test_illegal_transform_rejected(self):
        b = ProgramBuilder("t", params=("N",), default_binding={"N": 5})
        N = b.param("N")
        A = b.array("A", (N, N))
        with b.nest("n") as nb:
            i = nb.loop("i", 2, N)
            j = nb.loop("j", 2, N)
            nb.assign(A[i, j], A[i - 1, j + 1] + 1.0)
        nest = b.build().nests[0]
        with pytest.raises(ValueError):
            apply_loop_transform(nest, interchange_matrix(2, 0, 1))

    def test_interchange_swaps_subscripts(self):
        nest = copy_nest()
        out = apply_loop_transform(nest, interchange_matrix(2, 0, 1))
        assert out.loop_vars == ("u", "v")
        # A[i,j] (stored A(i-1, j-1)) with i=v, j=u becomes A(v-1, u-1)
        stmt = out.body[0]
        assert str(stmt.lhs) == "A(v - 1, u - 1)"

    def test_interchange_preserves_iteration_multiset(self):
        nest = copy_nest()
        out = apply_loop_transform(nest, interchange_matrix(2, 0, 1))
        orig_stmts = set()
        for env in nest.iterate({"N": 4}):
            orig_stmts.add(nest.body[0].lhs.index(env, {"N": 4}))
        new_stmts = set()
        for env in out.iterate({"N": 4}):
            new_stmts.add(out.body[0].lhs.index(env, {"N": 4}))
        assert orig_stmts == new_stmts

    def test_skew_preserves_iteration_multiset(self):
        nest = stencil_nest()
        t = skew_matrix(2, 0, 1, 1)
        out = apply_loop_transform(nest, t)
        binding = {"N": 5}
        orig = {nest.body[0].lhs.index(env, binding) for env in nest.iterate(binding)}
        new = {out.body[0].lhs.index(env, binding) for env in out.iterate(binding)}
        assert orig == new

    def test_legal_interchange_on_stencil(self):
        nest = stencil_nest()
        out = apply_loop_transform(nest, interchange_matrix(2, 0, 1))
        assert out.depth == 2

    def test_triangular_bounds_transformed(self):
        b = ProgramBuilder("t", params=("N",), default_binding={"N": 6})
        N = b.param("N")
        A = b.array("A", (N, N))
        B2 = b.array("B", (N, N))
        with b.nest("n") as nb:
            i = nb.loop("i", 1, N)
            j = nb.loop("j", i, N)
            nb.assign(A[i, j], B2[j, i] + 1.0)
        nest = b.build().nests[0]
        out = apply_loop_transform(nest, interchange_matrix(2, 0, 1))
        binding = {"N": 6}
        orig = {(env["i"], env["j"]) for env in nest.iterate(binding)}
        new = {(env["v"], env["u"]) for env in out.iterate(binding)}
        assert orig == new
