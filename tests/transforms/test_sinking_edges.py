"""Code sinking details: exit-guarded statements, nested sinking, and
semantic preservation of the normalized forms."""

import numpy as np
import pytest

from repro.engine import interpret_program
from repro.engine.interpreter import initial_arrays, interpret_nest
from repro.ir import ProgramBuilder
from repro.transforms import normalize_program


def interpret_tree(program, binding, storage):
    """Reference semantics of the imperfect trees: walk them directly."""
    from repro.ir.tree import LoopNode, StmtNode

    def load(ref, env):
        return float(storage[ref.array.name][ref.index(env, binding)])

    def walk(node, env):
        if isinstance(node, StmtNode):
            full = {**binding, **env}
            if node.stmt.guards and not node.stmt.guarded_on(full):
                return
            value = node.stmt.rhs.evaluate(full, load)
            storage[node.stmt.lhs.array.name][
                node.stmt.lhs.index(env, binding)
            ] = value
            return
        lo = max(b.eval_lower({**binding, **env}) for b in node.loop.lowers)
        hi = min(b.eval_upper({**binding, **env}) for b in node.loop.uppers)
        for v in range(lo, hi + 1):
            env[node.loop.var] = v
            for child in node.children:
                walk(child, env)
            del env[node.loop.var]

    for tree in program.trees:
        walk(tree, {})


class TestExitGuardSinking:
    def build(self):
        b = ProgramBuilder("s", params=("N",), default_binding={"N": 5})
        N = b.param("N")
        X = b.array("X", (N,))
        Y = b.array("Y", (N, N))
        with b.tree() as t:
            with t.loop("i", 1, N) as ti:
                with t.loop("j", 1, N) as tj:
                    t.assign(Y[ti, tj], Y[ti, tj] + 1.0)
                t.assign(X[ti], Y[ti, 3] * 2.0)  # after the j loop
        return b.build()

    def test_statement_sunk_with_exit_guard(self):
        out = normalize_program(self.build())
        assert len(out.nests) == 1
        guarded = [s for s in out.nests[0].body if s.guards]
        assert len(guarded) == 1
        # runs only on the last j iteration
        assert guarded[0].guarded_on({"i": 2, "j": 5, "N": 5})
        assert not guarded[0].guarded_on({"i": 2, "j": 4, "N": 5})

    def test_semantics_preserved(self):
        p = self.build()
        binding = p.binding()
        init = initial_arrays(p, binding)
        ref = {k: v.copy() for k, v in init.items()}
        interpret_tree(p, binding, ref)
        out = normalize_program(p)
        got = interpret_program(out, initial=init)
        for name in ("X", "Y"):
            np.testing.assert_allclose(got[name], ref[name])


class TestMixedSinkingAndFusion:
    def test_pre_and_post_statements(self):
        b = ProgramBuilder("m", params=("N",), default_binding={"N": 4})
        N = b.param("N")
        X = b.array("X", (N,))
        Y = b.array("Y", (N, N))
        Z = b.array("Z", (N,))
        with b.tree() as t:
            with t.loop("i", 1, N) as ti:
                t.assign(X[ti], 0.0)  # before: entry guard
                with t.loop("j", 1, N) as tj:
                    t.assign(Y[ti, tj], X[ti] + 1.0)
                t.assign(Z[ti], Y[ti, 1])  # after: exit guard
        p = b.build()
        binding = p.binding()
        init = initial_arrays(p, binding)
        ref = {k: v.copy() for k, v in init.items()}
        interpret_tree(p, binding, ref)
        out = normalize_program(p)
        assert len(out.nests) == 1
        assert len(out.nests[0].body) == 3
        got = interpret_program(out, initial=init)
        for name in ("X", "Y", "Z"):
            np.testing.assert_allclose(got[name], ref[name], err_msg=name)

    def test_three_sibling_loops_fuse(self):
        b = ProgramBuilder("f", params=("N",), default_binding={"N": 4})
        N = b.param("N")
        A = b.array("A", (N, N))
        B2 = b.array("B", (N, N))
        C = b.array("C", (N, N))
        with b.tree() as t:
            with t.loop("i", 1, N) as ti:
                with t.loop("j", 1, N) as tj:
                    t.assign(A[ti, tj], 1.0)
                with t.loop("j2", 1, N) as tj2:
                    t.assign(B2[ti, tj2], A[ti, tj2] + 1.0)
                with t.loop("j3", 1, N) as tj3:
                    t.assign(C[ti, tj3], B2[ti, tj3] + 1.0)
        out = normalize_program(b.build())
        assert len(out.nests) == 1
        assert len(out.nests[0].body) == 3
