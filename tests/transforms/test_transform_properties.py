"""Algebraic properties of loop transformations, checked semantically."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import interpret_program
from repro.engine.interpreter import initial_arrays
from repro.ir import Program, ProgramBuilder
from repro.linalg import IMat
from repro.transforms import apply_loop_transform

UNIMODULAR_2X2 = [
    [[1, 0], [0, 1]],
    [[0, 1], [1, 0]],
    [[1, 1], [0, 1]],
    [[1, 0], [1, 1]],
    [[1, -1], [0, 1]],
    [[2, 1], [1, 1]],
]


def copy_program(n=5):
    b = ProgramBuilder("t", params=("N",), default_binding={"N": n})
    N = b.param("N")
    A = b.array("A", (N, N))
    B2 = b.array("B", (N, N))
    with b.nest("n") as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", 1, N)
        nb.assign(A[i, j], B2[j, i] + 1.0)
    return b.build()


def run(program: Program) -> dict:
    init = initial_arrays(program, program.binding())
    return interpret_program(program, initial=init)


class TestComposition:
    @settings(max_examples=25, deadline=None)
    @given(st.sampled_from(UNIMODULAR_2X2), st.sampled_from(UNIMODULAR_2X2))
    def test_sequential_equals_composed(self, rows1, rows2):
        """Applying T1 then T2 equals applying T2·T1 (both legal here:
        the nest has no dependences)."""
        p = copy_program()
        nest = p.nests[0]
        t1, t2 = IMat(rows1), IMat(rows2)
        step = apply_loop_transform(
            apply_loop_transform(nest, t1, check_legality=False),
            t2,
            check_legality=False,
        )
        composed = apply_loop_transform(nest, t2 @ t1, check_legality=False)
        binding = {"N": 5}
        pts_step = {
            tuple(env[v] for v in step.loop_vars)
            for env in step.iterate(binding)
        }
        pts_comp = {
            tuple(env[v] for v in composed.loop_vars)
            for env in composed.iterate(binding)
        }
        assert pts_step == pts_comp

    @settings(max_examples=25, deadline=None)
    @given(st.sampled_from(UNIMODULAR_2X2))
    def test_inverse_restores_iteration_space(self, rows):
        p = copy_program()
        nest = p.nests[0]
        t = IMat(rows)
        back = apply_loop_transform(
            apply_loop_transform(nest, t, check_legality=False),
            t.inverse_unimodular(),
            check_legality=False,
        )
        binding = {"N": 5}
        orig = {
            tuple(env[v] for v in nest.loop_vars)
            for env in nest.iterate(binding)
        }
        restored = {
            tuple(env[v] for v in back.loop_vars)
            for env in back.iterate(binding)
        }
        assert orig == restored

    @settings(max_examples=20, deadline=None)
    @given(st.sampled_from(UNIMODULAR_2X2))
    def test_any_unimodular_transform_preserves_results(self, rows):
        """Dependence-free nest: every unimodular reordering computes the
        same arrays."""
        p = copy_program()
        transformed = p.with_nests(
            [apply_loop_transform(p.nests[0], IMat(rows), check_legality=False)]
        )
        expect = run(p)
        got = run(transformed)
        np.testing.assert_allclose(got["A"], expect["A"])
