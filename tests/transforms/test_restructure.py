import pytest

from repro.ir import ProgramBuilder
from repro.transforms import can_fuse, distribute, fuse, normalize_program, normalize_tree
from repro.transforms.normalize import NormalizationError
from repro.transforms import TilingSpec, levels_carrying_reuse, no_tiling, ooc_tiling, traditional_tiling
from repro.layout import col_major, row_major


def two_copy_nests(shift=0):
    b = ProgramBuilder("t", params=("N",), default_binding={"N": 5})
    N = b.param("N")
    A = b.array("A", (N, N))
    B = b.array("B", (N, N))
    C = b.array("C", (N, N))
    with b.nest("n1") as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", 1, N)
        nb.assign(B[i, j], A[i, j] + 1.0)
    with b.nest("n2") as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", 1, N)
        if shift:
            nb.assign(C[i, j], B[i + shift, j] + 1.0)
        else:
            nb.assign(C[i, j], B[i, j] + 1.0)
    p = b.build()
    return p.nests[0], p.nests[1]


class TestFusion:
    def test_independent_nests_fuse(self):
        a, b = two_copy_nests()
        assert can_fuse(a, b)
        merged = fuse(a, b)
        assert len(merged.body) == 2
        assert merged.depth == 2

    def test_forward_dep_fuses(self):
        # n2 reads B(i, j) written by n1 at the same iteration: legal
        a, b = two_copy_nests(shift=0)
        assert can_fuse(a, b)

    def test_backward_dep_blocks_fusion(self):
        # n2 reads B(i+1, j): after fusion the read at i would happen
        # before the write at i+1 — original had all writes first
        a, b = two_copy_nests(shift=1)
        assert not can_fuse(a, b)

    def test_different_bounds_block_fusion(self):
        bld = ProgramBuilder("t", params=("N",), default_binding={"N": 5})
        N = bld.param("N")
        A = bld.array("A", (N, N))
        with bld.nest("n1") as nb:
            i = nb.loop("i", 1, N)
            j = nb.loop("j", 1, N)
            nb.assign(A[i, j], 0.0)
        with bld.nest("n2") as nb:
            i = nb.loop("i", 2, N)
            j = nb.loop("j", 1, N)
            nb.assign(A[i, j], 1.0)
        p = bld.build()
        assert not can_fuse(p.nests[0], p.nests[1])
        with pytest.raises(ValueError):
            fuse(p.nests[0], p.nests[1])

    def test_fuse_renames_variables(self):
        bld = ProgramBuilder("t", params=("N",), default_binding={"N": 5})
        N = bld.param("N")
        A = bld.array("A", (N, N))
        B = bld.array("B", (N, N))
        with bld.nest("n1") as nb:
            i = nb.loop("i", 1, N)
            j = nb.loop("j", 1, N)
            nb.assign(A[i, j], 1.0)
        with bld.nest("n2") as nb:
            u = nb.loop("u", 1, N)
            v = nb.loop("v", 1, N)
            nb.assign(B[u, v], 2.0)
        p = bld.build()
        merged = fuse(p.nests[0], p.nests[1])
        assert merged.loop_vars == ("i", "j")
        assert "u" not in str(merged.body[1])


class TestDistribution:
    def test_independent_statements_split(self):
        bld = ProgramBuilder("t", params=("N",), default_binding={"N": 5})
        N = bld.param("N")
        A = bld.array("A", (N, N))
        B = bld.array("B", (N, N))
        with bld.nest("n") as nb:
            i = nb.loop("i", 1, N)
            j = nb.loop("j", 1, N)
            nb.assign(A[i, j], 1.0)
            nb.assign(B[i, j], 2.0)
        nests = distribute(bld.build().nests[0])
        assert len(nests) == 2
        assert [len(n.body) for n in nests] == [1, 1]

    def test_single_statement_unchanged(self):
        a, _ = two_copy_nests()
        assert distribute(a) == [a]

    def test_dependence_cycle_stays_together(self):
        bld = ProgramBuilder("t", params=("N",), default_binding={"N": 5})
        N = bld.param("N")
        A = bld.array("A", (N, N))
        B = bld.array("B", (N, N))
        with bld.nest("n") as nb:
            i = nb.loop("i", 2, N)
            j = nb.loop("j", 2, N)
            nb.assign(A[i, j], B[i - 1, j] + 1.0)
            nb.assign(B[i, j], A[i - 1, j] + 1.0)
        nests = distribute(bld.build().nests[0])
        assert len(nests) == 1

    def test_chain_distributes_in_order(self):
        bld = ProgramBuilder("t", params=("N",), default_binding={"N": 5})
        N = bld.param("N")
        A = bld.array("A", (N, N))
        B = bld.array("B", (N, N))
        C = bld.array("C", (N, N))
        with bld.nest("n") as nb:
            i = nb.loop("i", 1, N)
            j = nb.loop("j", 1, N)
            nb.assign(B[i, j], A[i, j] + 1.0)
            nb.assign(C[i, j], B[i, j] + 1.0)
        nests = distribute(bld.build().nests[0])
        assert len(nests) == 2
        assert nests[0].body[0].lhs.array.name == "B"
        assert nests[1].body[0].lhs.array.name == "C"


class TestNormalize:
    def build_figure1_first_tree(self):
        """do i { do j {S1}; do j {S2} } — fusable (Figure 1, left nest)."""
        b = ProgramBuilder("f1", params=("N",), default_binding={"N": 5})
        N = b.param("N")
        U = b.array("U", (N, N))
        V = b.array("V", (N, N))
        W = b.array("W", (N, N))
        with b.tree("t0") as t:
            with t.loop("i", 1, N) as ti:
                with t.loop("j", 1, N) as tj:
                    t.assign(U[ti, tj], V[tj, ti] + 1.0)
                with t.loop("j2", 1, N) as tj2:
                    t.assign(W[ti, tj2], V[ti, tj2] + 2.0)
        return b.build()

    def test_fusion_path(self):
        p = self.build_figure1_first_tree()
        out = normalize_program(p)
        assert len(out.nests) == 1
        assert len(out.nests[0].body) == 2
        assert out.nests[0].depth == 2

    def test_distribution_path(self):
        # inner loops with different bounds cannot fuse -> distribute i
        b = ProgramBuilder("f2", params=("N",), default_binding={"N": 5})
        N = b.param("N")
        X = b.array("X", (N, N))
        Y = b.array("Y", (N, N))
        with b.tree() as t:
            with t.loop("i", 1, N) as ti:
                with t.loop("j", 1, N) as tj:
                    t.assign(X[ti, tj], 1.0)
                with t.loop("j2", 2, N) as tj2:
                    t.assign(Y[ti, tj2], 2.0)
        out = normalize_program(b.build())
        assert len(out.nests) == 2

    def test_sinking_path(self):
        # statement before an inner loop gets guarded into it
        b = ProgramBuilder("f3", params=("N",), default_binding={"N": 5})
        N = b.param("N")
        X = b.array("X", (N,))
        Y = b.array("Y", (N, N))
        with b.tree() as t:
            with t.loop("i", 1, N) as ti:
                t.assign(X[ti], 0.0)
                with t.loop("j", 1, N) as tj:
                    t.assign(Y[ti, tj], X[ti] + 1.0)
        out = normalize_program(b.build())
        assert len(out.nests) == 1
        nest = out.nests[0]
        assert len(nest.body) == 2
        guarded = [s for s in nest.body if s.guards]
        assert len(guarded) == 1
        # the guard pins j to its lower bound
        assert guarded[0].guarded_on({"i": 3, "j": 1, "N": 5})
        assert not guarded[0].guarded_on({"i": 3, "j": 2, "N": 5})

    def test_illegal_distribution_raises(self):
        # second inner loop writes what the first reads at later i:
        # distributing i would reverse the order; different bounds block fusion
        b = ProgramBuilder("f4", params=("N",), default_binding={"N": 5})
        N = b.param("N")
        X = b.array("X", (2 * N, N))
        with b.tree() as t:
            with t.loop("i", 1, N) as ti:
                with t.loop("j", 1, N) as tj:
                    t.assign(X[ti, tj], X[ti + 1, tj] + 1.0)
                with t.loop("j2", 2, N) as tj2:
                    t.assign(X[ti + 1, tj2], 5.0)
        with pytest.raises(NormalizationError):
            normalize_program(b.build())

    def test_program_without_trees_unchanged(self):
        a, _ = two_copy_nests()
        b = ProgramBuilder("x", params=("N",), default_binding={"N": 5})
        p = self_contained(a)
        assert normalize_program(p) is p

    def test_statement_multiset_preserved(self):
        p = self.build_figure1_first_tree()
        out = normalize_program(p)
        orig = sorted(str(s.lhs.array.name) for s in p.trees[0].statements())
        new = sorted(s.lhs.array.name for n in out.nests for s in n.body)
        assert orig == new


def self_contained(nest):
    from repro.ir import Program

    arrays = []
    seen = set()
    for _, ref, _ in nest.refs():
        if ref.array.name not in seen:
            seen.add(ref.array.name)
            arrays.append(ref.array)
    return Program.make("p", arrays, [nest], nest.params, {"N": 5})


class TestTiling:
    def test_specs(self):
        a, _ = two_copy_nests()
        assert traditional_tiling(a).tiled == (True, True)
        assert ooc_tiling(a).tiled == (True, False)
        assert no_tiling(a).tiled == (False, False)
        assert ooc_tiling(a).describe() == "T."

    def test_depth1_ooc_still_tiles(self):
        b = ProgramBuilder("t", params=("N",), default_binding={"N": 5})
        N = b.param("N")
        X = b.array("X", (N,))
        with b.nest() as nb:
            i = nb.loop("i", 1, N)
            nb.assign(X[i], 1.0)
        assert ooc_tiling(b.build().nests[0]).tiled == (True,)

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError):
            TilingSpec(())

    def test_levels_carrying_reuse(self):
        # B(j, i) read in nest (i, j): j strides rows -> temporal none;
        # with col-major B, innermost j walks down a column: spatial at j=...
        b = ProgramBuilder("t", params=("N",), default_binding={"N": 5})
        N = b.param("N")
        A = b.array("A", (N, N))
        X = b.array("X", (N,))
        with b.nest() as nb:
            i = nb.loop("i", 1, N)
            j = nb.loop("j", 1, N)
            nb.assign(A[i, j], X[i] + 1.0)
        nest = b.build().nests[0]
        reuse = levels_carrying_reuse(
            nest, {"A": row_major(2), "X": row_major(1)}
        )
        # X(i) has temporal reuse in j (level 1); A(i,j) spatial in j under
        # row-major: level 1 carries reuse; level 0 carries none
        assert reuse == (False, True)

    def test_reuse_with_col_major(self):
        b = ProgramBuilder("t", params=("N",), default_binding={"N": 5})
        N = b.param("N")
        A = b.array("A", (N, N))
        B2 = b.array("B", (N, N))
        with b.nest() as nb:
            i = nb.loop("i", 1, N)
            j = nb.loop("j", 1, N)
            nb.assign(A[i, j], B2[j, i] + 1.0)
        nest = b.build().nests[0]
        reuse = levels_carrying_reuse(
            nest, {"A": row_major(2), "B": col_major(2)}
        )
        # A spatial in j (row-major); B(j,i): innermost j moves first
        # subscript; col-major hyperplane (0,1): g·col = 0 -> spatial at j
        assert reuse[1] is True
