import numpy as np
import pytest

from repro.cache import CacheConfig, TileCache, intersect_slices, regions_overlap
from repro.runtime.memory import MemoryManager


def R(*bounds):
    """Region literal: R((0, 3), (0, 3))."""
    return tuple(bounds)


class TestRegionGeometry:
    def test_overlap_and_disjoint(self):
        assert regions_overlap(R((0, 3)), R((3, 5)))
        assert not regions_overlap(R((0, 3)), R((4, 5)))
        assert regions_overlap(R((0, 3), (0, 3)), R((2, 5), (1, 1)))
        assert not regions_overlap(R((0, 3), (0, 3)), R((2, 5), (4, 6)))

    def test_intersect_slices_frames(self):
        pair = intersect_slices(R((2, 5), (0, 3)), R((4, 9), (2, 7)))
        assert pair is not None
        dst, src = pair
        assert dst == (slice(2, 4), slice(2, 4))
        assert src == (slice(0, 2), slice(0, 2))

    def test_intersect_slices_disjoint(self):
        assert intersect_slices(R((0, 1)), R((5, 6))) is None


class TestCacheConfig:
    def test_defaults_enabled_lru_write_back(self):
        cfg = CacheConfig()
        assert cfg.enabled and cfg.policy == "lru" and cfg.write_back

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(write_mode="write-around")
        with pytest.raises(ValueError):
            CacheConfig(budget_fraction=1.5)
        with pytest.raises(ValueError):
            CacheConfig(budget_elements=0)
        with pytest.raises(ValueError):
            CacheConfig(prefetch_depth=0)

    def test_resolve_budget(self):
        assert CacheConfig(budget_fraction=0.25).resolve_budget(100) == 25
        assert CacheConfig(budget_elements=7).resolve_budget(100) == 7


class TestHitMissEviction:
    def test_counters(self):
        c = TileCache(8)
        r = R((0, 3))
        assert c.lookup("A", r) is None
        c.insert("A", r, None)
        assert c.lookup("A", r) is not None
        assert (c.metrics.hits, c.metrics.misses) == (1, 1)
        assert c.metrics.hit_rate == 0.5

    def test_peek_does_not_count(self):
        c = TileCache(8)
        c.insert("A", R((0, 3)), None)
        assert c.peek("A", R((0, 3))) is not None
        assert c.peek("A", R((4, 7))) is None
        assert c.metrics.accesses == 0

    def test_eviction_on_budget(self):
        c = TileCache(8)
        c.insert("A", R((0, 3)), None)
        c.insert("B", R((0, 3)), None)
        accepted, writeback = c.insert("C", R((0, 3)), None)
        assert accepted and writeback == []
        assert len(c) == 2
        assert c.metrics.evictions == 1
        # LRU: A was the oldest
        assert c.peek("A", R((0, 3))) is None

    def test_dirty_eviction_returned_for_writeback(self):
        c = TileCache(4)
        c.insert("A", R((0, 3)), None, dirty=True)
        _, writeback = c.insert("B", R((0, 3)), None)
        assert [e.key for e in writeback] == [("A", R((0, 3)))]
        assert c.metrics.dirty_evictions == 1

    def test_oversized_region_rejected(self):
        c = TileCache(4)
        with pytest.raises(ValueError):
            c.insert("A", R((0, 7)), None)
        assert not c.fits(R((0, 7))) and c.fits(R((0, 3)))

    def test_data_is_copied_both_ways(self):
        c = TileCache(16)
        src = np.arange(4.0)
        c.insert("A", R((0, 3)), src)
        src[0] = 99.0
        entry = c.lookup("A", R((0, 3)))
        assert entry.data[0] == 0.0

    def test_exact_key_update_in_place(self):
        c = TileCache(8)
        c.insert("A", R((0, 3)), np.zeros(4), dirty=True)
        accepted, _ = c.insert("A", R((0, 3)), np.ones(4))
        assert accepted and len(c) == 1
        entry = c.peek("A", R((0, 3)))
        assert entry.dirty  # dirtiness is sticky until flushed
        np.testing.assert_array_equal(entry.data, np.ones(4))


class TestCoherence:
    def test_flush_overlapping_cleans_and_returns(self):
        c = TileCache(16)
        c.insert("A", R((0, 3)), None, dirty=True)
        c.insert("A", R((8, 11)), None, dirty=True)
        out = c.flush_overlapping("A", R((2, 5)))
        assert [e.region for e in out] == [R((0, 3))]
        assert not c.peek("A", R((0, 3))).dirty
        assert c.peek("A", R((8, 11))).dirty
        assert c.metrics.flushed_tiles == 1

    def test_flush_exclude_exact(self):
        c = TileCache(16)
        c.insert("A", R((0, 3)), None, dirty=True)
        assert c.flush_overlapping("A", R((0, 3)), exclude_exact=True) == []

    def test_invalidate_overlapping_drops(self):
        c = TileCache(16)
        c.insert("A", R((0, 3)), None, dirty=True)
        c.insert("A", R((4, 7)), None)
        dirty = c.invalidate_overlapping("A", R((1, 5)))
        assert [e.region for e in dirty] == [R((0, 3))]
        assert len(c) == 0
        assert c.metrics.evictions == 0  # coherence drops are not evictions

    def test_flush_all_keeps_residency(self):
        c = TileCache(16)
        c.insert("A", R((0, 3)), None, dirty=True)
        c.insert("B", R((0, 3)), None)
        out = c.flush_all()
        assert [e.name for e in out] == ["A"]
        assert len(c) == 2 and not any(e.dirty for e in c)

    def test_clear_returns_dirty(self):
        c = TileCache(16)
        c.insert("A", R((0, 3)), None, dirty=True)
        c.insert("B", R((0, 3)), None)
        assert [e.name for e in c.clear()] == ["A"]
        assert len(c) == 0


class TestCoverage:
    def test_no_overlap_is_none(self):
        c = TileCache(16)
        c.insert("A", R((0, 3)), None)
        assert c.coverage("B", R((0, 3))) is None
        assert c.coverage("A", R((8, 11))) is None

    def test_mask_and_fill(self):
        c = TileCache(64)
        c.insert("A", R((0, 3), (0, 3)), np.full((4, 4), 7.0))
        cov = c.coverage("A", R((2, 5), (0, 3)))
        assert cov is not None
        mask, entries = cov
        assert mask.shape == (4, 4)
        assert mask[:2].all() and not mask[2:].any()
        out = np.zeros((4, 4))
        c.fill_from(out, R((2, 5), (0, 3)), entries)
        assert (out[:2] == 7.0).all() and (out[2:] == 0.0).all()

    def test_multiple_contributors_union(self):
        c = TileCache(64)
        c.insert("A", R((0, 3)), np.arange(4.0))
        c.insert("A", R((6, 9)), np.arange(4.0) + 10)
        mask, entries = c.coverage("A", R((2, 7)))
        np.testing.assert_array_equal(
            mask, [True, True, False, False, True, True]
        )
        out = np.zeros(6)
        c.fill_from(out, R((2, 7)), entries)
        np.testing.assert_array_equal(out, [2, 3, 0, 0, 10, 11])


class TestMemoryMirroring:
    def test_residency_is_allocated_and_freed(self):
        mm = MemoryManager(100)
        c = TileCache(8, memory=mm)
        c.insert("A", R((0, 3)), None)
        assert mm.in_use == 4
        c.insert("B", R((0, 3)), None)
        assert mm.in_use == 8
        c.insert("C", R((0, 3)), None)  # evicts A
        assert mm.in_use == 8
        c.clear()
        assert mm.in_use == 0

    def test_shared_budget_squeeze_declines(self):
        # cache would accept, but the shared MemoryManager is nearly
        # full (in-flight compute tiles): evict what it can, then decline
        mm = MemoryManager(10)
        mm.allocate(7)  # someone else's compute tile
        c = TileCache(8, memory=mm)
        accepted, _ = c.insert("A", R((0, 2)), None)
        assert accepted
        accepted, _ = c.insert("B", R((0, 4)), None)  # 5 > 10-7, even after evicting A
        assert not accepted
        assert len(c) == 0 and mm.in_use == 7


class TestBudgetGuards:
    """Named validation of cache budgets (CacheBudgetError): a zero or
    negative budget silently disables caching — or un-partitions a
    shared cache's tenant isolation — so it is rejected up front."""

    def test_zero_and_negative_budgets_rejected(self):
        from repro.cache import CacheBudgetError

        for bad in (0, -1, -1000):
            with pytest.raises(CacheBudgetError):
                TileCache(bad)

    def test_non_numeric_budget_rejected(self):
        from repro.cache import CacheBudgetError

        with pytest.raises(CacheBudgetError, match="element count"):
            TileCache("lots")

    def test_numpy_integer_budget_accepted(self):
        c = TileCache(np.int64(8))
        assert c.budget == 8

    def test_error_is_a_value_error(self):
        from repro.cache import CacheBudgetError

        assert issubclass(CacheBudgetError, ValueError)
        with pytest.raises(ValueError):
            TileCache(0)


class TestEvictEntry:
    def test_clean_eviction_counts_and_frees(self):
        c = TileCache(16)
        c.insert("A", R((0, 3)), None)
        returned = c.evict_entry("A", R((0, 3)))
        assert returned is None  # clean: no write-back owed
        assert c.metrics.evictions == 1
        assert c.metrics.dirty_evictions == 0
        assert c.peek("A", R((0, 3))) is None

    def test_dirty_eviction_returns_entry_for_writeback(self):
        c = TileCache(16)
        c.insert("A", R((0, 3)), None, dirty=True)
        returned = c.evict_entry("A", R((0, 3)))
        assert returned is not None and returned.dirty
        assert c.metrics.dirty_evictions == 1

    def test_missing_entry_is_a_silent_noop(self):
        c = TileCache(16)
        assert c.evict_entry("A", R((0, 3))) is None
        assert c.metrics.evictions == 0

    def test_memory_released(self):
        mm = MemoryManager(32)
        c = TileCache(16, memory=mm)
        c.insert("A", R((0, 3)), None)
        assert mm.in_use == 4
        c.evict_entry("A", R((0, 3)))
        assert mm.in_use == 0
