"""Executor integration: the tile cache must never change *results*,
only *I/O* — and with the cache disabled, not even that."""

import numpy as np
import pytest

from repro.cache import CacheConfig
from repro.engine import OOCExecutor, interpret_program
from repro.engine.executor import InterleavedStoreSpec
from repro.engine.interpreter import initial_arrays
from repro.ir import ProgramBuilder
from repro.runtime import MachineParams

SMALL = MachineParams(n_io_nodes=4, stripe_bytes=64, io_latency_s=0.01)


def matmul_program(n=6, weight=1):
    b = ProgramBuilder("mat", params=("N",), default_binding={"N": n})
    N = b.param("N")
    A, B, C = b.array("A", (N, N)), b.array("B", (N, N)), b.array("C", (N, N))
    with b.nest("mm", weight=weight) as nb:
        i, j, k = nb.loop("i", 1, N), nb.loop("j", 1, N), nb.loop("k", 1, N)
        nb.assign(C[i, j], C[i, j] + A[i, k] * B[k, j])
    return b.build()


def two_nest_program(n=6):
    """Cross-nest reuse: both nests sweep U and V."""
    b = ProgramBuilder("pair", params=("N",), default_binding={"N": n})
    N = b.param("N")
    U, V = b.array("U", (N, N)), b.array("V", (N, N))
    with b.nest("first") as nb:
        i, j = nb.loop("i", 1, N), nb.loop("j", 1, N)
        nb.assign(U[i, j], V[i, j] + 1.0)
    with b.nest("second") as nb:
        i, j = nb.loop("i", 1, N), nb.loop("j", 1, N)
        nb.assign(V[i, j], U[i, j] * 2.0)
    return b.build()


def stencil_program(n=8):
    """Consecutive tiles overlap by a one-row halo (partial coverage)."""
    b = ProgramBuilder("stencil", params=("N",), default_binding={"N": n})
    N = b.param("N")
    U, V = b.array("U", (N, N)), b.array("V", (N, N))
    with b.nest("sweep") as nb:
        i = nb.loop("i", 2, N)
        j = nb.loop("j", 1, N)
        nb.assign(U[i, j], V[i - 1, j] + V[i, j])
    return b.build()


def triangular_program(n=8):
    b = ProgramBuilder("tri", params=("N",), default_binding={"N": n})
    N = b.param("N")
    A, S = b.array("A", (N, N)), b.array("S", (N, N))
    with b.nest("tri") as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", 1, i)
        nb.assign(S[i, j], A[j, i] + A[i, j])
    return b.build()


ALL_PROGRAMS = [matmul_program, two_nest_program, stencil_program, triangular_program]


def run_pair(program, cache, *, real, memory_budget=40, **kw):
    init = initial_arrays(program, program.binding(None)) if real else None
    ex = OOCExecutor(
        program, params=SMALL, real=real, memory_budget=memory_budget,
        initial=init, cache=cache, **kw,
    )
    return ex, ex.run(), init


class TestDisabledIsIdentical:
    @pytest.mark.parametrize("make", ALL_PROGRAMS, ids=lambda f: f.__name__)
    @pytest.mark.parametrize("real", [False, True], ids=["sim", "real"])
    def test_stats_identical(self, make, real):
        p = make()
        _, none_res, _ = run_pair(p, None, real=real)
        _, off_res, _ = run_pair(p, CacheConfig(enabled=False), real=real)
        assert none_res.stats == off_res.stats
        assert none_res.peak_memory == off_res.peak_memory
        assert off_res.cache_metrics is None
        assert off_res.stats.cache is None


class TestNumericalIdentity:
    @pytest.mark.parametrize("make", ALL_PROGRAMS, ids=lambda f: f.__name__)
    @pytest.mark.parametrize("write_mode", ["write-back", "write-through"])
    @pytest.mark.parametrize("policy", ["lru", "lfu", "cost"])
    def test_matches_interpreter(self, make, write_mode, policy):
        p = make()
        cfg = CacheConfig(policy=policy, write_mode=write_mode, prefetch=True)
        ex, _, init = run_pair(p, cfg, real=True)
        expect = interpret_program(p, initial=init)
        for a in p.arrays:
            np.testing.assert_allclose(
                ex.array_data(a.name), expect[a.name], err_msg=a.name
            )

    def test_weight_repetitions(self):
        p = matmul_program(5, weight=3)
        cfg = CacheConfig(prefetch=True)
        ex, _, init = run_pair(p, cfg, real=True, memory_budget=60)
        expect = interpret_program(p, initial=init)
        np.testing.assert_allclose(ex.array_data("C"), expect["C"])

    def test_interleaved_store(self):
        p = two_nest_program(6)
        spec = {
            "U": InterleavedStoreSpec("g", (2, 2)),
            "V": InterleavedStoreSpec("g", (2, 2)),
        }
        cfg = CacheConfig(budget_fraction=0.4)
        ex, _, init = run_pair(
            p, cfg, real=True, memory_budget=40, storage_spec=spec
        )
        expect = interpret_program(p, initial=init)
        np.testing.assert_allclose(ex.array_data("U"), expect["U"])
        np.testing.assert_allclose(ex.array_data("V"), expect["V"])


class TestAccountingInvariants:
    @pytest.mark.parametrize("make", ALL_PROGRAMS, ids=lambda f: f.__name__)
    def test_sim_matches_real_io(self, make):
        """Simulated accounting must equal real-mode accounting with the
        cache live (hits, partial reads, prefetch and all)."""
        p = make()
        cfg = CacheConfig(prefetch=True)
        _, sim, _ = run_pair(p, cfg, real=False)
        _, real, _ = run_pair(p, cfg, real=True)
        assert sim.stats.read_calls == real.stats.read_calls
        assert sim.stats.write_calls == real.stats.write_calls
        assert sim.stats.elements_read == real.stats.elements_read
        assert sim.stats.elements_written == real.stats.elements_written
        sm, rm = sim.cache_metrics, real.cache_metrics
        assert (sm.hits, sm.misses, sm.partial_hits) == (
            rm.hits, rm.misses, rm.partial_hits
        )
        assert sm.evictions == rm.evictions

    @pytest.mark.parametrize("make", ALL_PROGRAMS, ids=lambda f: f.__name__)
    def test_peak_memory_within_budget(self, make):
        """Resident cache tiles + in-flight compute tiles must respect
        the per-node budget (modulo the planner's boundary-tile slack,
        which is counted in over_budget_tiles)."""
        p = make()
        _, res, _ = run_pair(p, CacheConfig(), real=False)
        if res.over_budget_tiles == 0:
            assert res.peak_memory <= 40

    def test_stencil_partial_hits(self):
        """The halo of a row sweep is served from the previous tile."""
        _, res, _ = run_pair(
            stencil_program(12), CacheConfig(budget_elements=72),
            real=False, memory_budget=108,
        )
        m = res.cache_metrics
        assert m.partial_hits > 0
        assert m.elements_saved > 0

    def test_cross_nest_reuse(self):
        """Nest 2 re-reads what nest 1 left resident."""
        p = two_nest_program(6)
        _, small, _ = run_pair(p, CacheConfig(budget_elements=8), real=False)
        _, big, _ = run_pair(p, CacheConfig(budget_elements=72), real=False,
                             memory_budget=112)
        assert big.stats.read_calls < small.stats.read_calls
        assert big.cache_metrics.hits > 0

    def test_savings_priced_like_real_reads(self):
        """Adding cache on top of the same plan can only remove reads."""
        p = two_nest_program(6)
        M = 40
        _, off, _ = run_pair(p, None, real=False, memory_budget=M)
        cfg = CacheConfig(budget_elements=M)
        _, on, _ = run_pair(p, cfg, real=False, memory_budget=2 * M)
        assert on.stats.read_calls <= off.stats.read_calls
        assert on.stats.elements_read <= off.stats.elements_read

    def test_prefetch_counters_and_overlap(self):
        p = matmul_program(6)
        cfg = CacheConfig(prefetch=True, prefetch_depth=2)
        _, res, _ = run_pair(p, cfg, real=True)
        m = res.cache_metrics
        assert m.prefetch_issued > 0
        assert 0 <= m.prefetch_used <= m.prefetch_issued
        assert res.overlapped_time_s <= res.serial_time_s
        assert m.overlapped_io_s + m.exposed_prefetch_io_s == pytest.approx(
            m.prefetch_io_s
        )

    def test_cache_metrics_surface_in_stats(self):
        _, res, _ = run_pair(matmul_program(5), CacheConfig(), real=False)
        assert res.stats.cache is res.cache_metrics
        assert "cache[" in str(res.stats)

    def test_cache_budget_must_leave_compute_room(self):
        p = matmul_program(5)
        with pytest.raises(ValueError, match="leave memory"):
            OOCExecutor(
                p, params=SMALL, real=False, memory_budget=40,
                cache=CacheConfig(budget_elements=40),
            )
