import pytest

from repro.cache import (
    POLICIES,
    CostAwarePolicy,
    LFUPolicy,
    LRUPolicy,
    TileCache,
    make_policy,
)


def R(*bounds):
    return tuple(bounds)


class TestMakePolicy:
    def test_by_name_and_passthrough(self):
        assert isinstance(make_policy("lru"), LRUPolicy)
        assert isinstance(make_policy("lfu"), LFUPolicy)
        assert isinstance(make_policy("cost"), CostAwarePolicy)
        p = LRUPolicy()
        assert make_policy(p) is p

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown eviction policy"):
            make_policy("fifo")

    def test_registry_names_match(self):
        for name, cls in POLICIES.items():
            assert cls.name == name


class TestLRU:
    def test_evicts_least_recently_used(self):
        c = TileCache(8, "lru")
        c.insert("A", R((0, 3)), None)
        c.insert("B", R((0, 3)), None)
        c.lookup("A", R((0, 3)))  # A is now the most recent
        c.insert("C", R((0, 3)), None)
        assert c.peek("B", R((0, 3))) is None
        assert c.peek("A", R((0, 3))) is not None


class TestLFU:
    def test_protects_frequently_used(self):
        c = TileCache(8, "lfu")
        c.insert("A", R((0, 3)), None)
        c.insert("B", R((0, 3)), None)
        for _ in range(3):
            c.lookup("A", R((0, 3)))
        c.lookup("B", R((0, 3)))  # more recent, but less frequent
        c.insert("C", R((0, 3)), None)
        assert c.peek("B", R((0, 3))) is None
        assert c.peek("A", R((0, 3))) is not None

    def test_tie_broken_lru(self):
        c = TileCache(8, "lfu")
        c.insert("A", R((0, 3)), None)
        c.insert("B", R((0, 3)), None)
        c.insert("C", R((0, 3)), None)  # equal counts: A is oldest
        assert c.peek("A", R((0, 3))) is None


class TestCostAware:
    def test_keeps_expensive_tiles(self):
        c = TileCache(8, "cost")
        assert c.policy.uses_cost
        # same size and recency; A shatters into many calls, B is one
        # sequential run
        c.insert("A", R((0, 3)), None, cost_s=1.0)
        c.insert("B", R((0, 3)), None, cost_s=0.001)
        c.insert("C", R((0, 3)), None, cost_s=0.5)
        assert c.peek("B", R((0, 3))) is None
        assert c.peek("A", R((0, 3))) is not None

    def test_clock_ages_survivors(self):
        p = CostAwarePolicy()
        c = TileCache(4, p)
        c.insert("A", R((0, 3)), None, cost_s=0.4)
        c.insert("B", R((0, 3)), None, cost_s=0.2)  # evicts A
        # the evicted priority became the clock: fresh cheap entries are
        # not immortalized against long-gone expensive ones
        assert p._clock == pytest.approx(0.4 / 4)
        c.insert("C", R((0, 3)), None, cost_s=0.3)  # evicts B
        entry = c.peek("C", R((0, 3)))
        assert entry is not None
        assert entry.priority > 0.4 / 4
