import pytest

from repro.cache import CacheMetrics, DoubleBufferModel, PrefetchScheduler


def tiles(n):
    return [[(f"A", ((t, t),))] for t in range(n)]


class TestPrefetchScheduler:
    def test_depth_validation(self):
        with pytest.raises(ValueError):
            PrefetchScheduler(0)

    def test_depth_one_hands_out_next_tile(self):
        s = PrefetchScheduler(1)
        s.begin_nest(tiles(3))
        assert s.requests_after(0) == [("A", ((1, 1),))]
        assert s.requests_after(1) == [("A", ((2, 2),))]
        assert s.requests_after(2) == []  # walk exhausted

    def test_deeper_lookahead_no_reissue(self):
        s = PrefetchScheduler(2)
        s.begin_nest(tiles(4))
        assert s.requests_after(0) == [
            ("A", ((1, 1),)),
            ("A", ((2, 2),)),
        ]
        # tiles 1 and 2 were already handed out; only 3 is new
        assert s.requests_after(1) == [("A", ((3, 3),))]

    def test_begin_nest_resets(self):
        s = PrefetchScheduler(1)
        s.begin_nest(tiles(2))
        s.requests_after(0)
        s.begin_nest(tiles(2))
        assert s.n_tiles == 2
        assert s.requests_after(0) == [("A", ((1, 1),))]


class TestDoubleBufferModel:
    def test_overlap_split(self):
        m = CacheMetrics()
        model = DoubleBufferModel(m)
        model.note_tile(compute_s=2.0, prefetch_io_s=0.5)  # fully hidden
        model.note_tile(compute_s=0.25, prefetch_io_s=1.0)  # mostly exposed
        assert m.prefetch_io_s == pytest.approx(1.5)
        assert m.overlapped_io_s == pytest.approx(0.75)
        assert m.exposed_prefetch_io_s == pytest.approx(0.75)

    def test_zero_compute_exposes_everything(self):
        m = CacheMetrics()
        DoubleBufferModel(m).note_tile(0.0, 0.4)
        assert m.overlapped_io_s == 0.0
        assert m.exposed_prefetch_io_s == pytest.approx(0.4)


class TestCacheMetrics:
    def test_merge_is_fieldwise(self):
        a = CacheMetrics(hits=1, misses=2, partial_hits=1, evictions=3,
                         read_calls_saved=4, elements_saved=5,
                         prefetch_issued=2, prefetch_used=1,
                         overlapped_io_s=0.5)
        b = CacheMetrics(hits=10, misses=20, partial_hits=2, evictions=30,
                         read_calls_saved=40, elements_saved=50,
                         prefetch_issued=3, prefetch_used=3,
                         exposed_prefetch_io_s=0.25)
        m = a.merge(b)
        assert (m.hits, m.misses, m.partial_hits) == (11, 22, 3)
        assert (m.evictions, m.read_calls_saved, m.elements_saved) == (33, 44, 55)
        assert (m.prefetch_issued, m.prefetch_used, m.prefetch_unused) == (5, 4, 1)
        assert m.overlapped_io_s == pytest.approx(0.5)
        assert m.exposed_prefetch_io_s == pytest.approx(0.25)

    def test_rates_and_bytes(self):
        m = CacheMetrics(hits=3, misses=1, elements_saved=10)
        assert m.hit_rate == 0.75
        assert m.bytes_saved() == 80
        assert CacheMetrics().hit_rate == 0.0

    def test_str_mentions_prefetch_only_when_issued(self):
        assert "prefetch" not in str(CacheMetrics(hits=1, misses=1))
        assert "prefetch" in str(CacheMetrics(prefetch_issued=2))
