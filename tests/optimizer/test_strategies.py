"""Detailed tests of the six version strategies."""

import pytest

from repro.engine.executor import InterleavedStoreSpec, LinearStoreSpec
from repro.ir import ProgramBuilder
from repro.linalg import IMat
from repro.optimizer import VERSION_NAMES, build_version
from repro.optimizer.strategies import _effective_tile
from repro.workloads import build_workload


def shared_array_program(n=16):
    """Array S is tiled differently by two nests — must not be chunked."""
    b = ProgramBuilder("sp", params=("N",), default_binding={"N": n})
    N = b.param("N")
    S = b.array("S", (N, N))
    A = b.array("A", (N, N))
    B2 = b.array("B", (N, N))
    with b.nest("r", weight=4) as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", 1, N)
        nb.assign(A[i, j], S[i, j] + 1.0)
    with b.nest("t") as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", 1, N)
        nb.assign(B2[i, j], S[j, i] + 1.0)
    return b.build()


class TestEffectiveTile:
    def test_tile_fits_slab(self):
        assert _effective_tile(128, 16, 4) == 16  # slab 32, tile 16 divides

    def test_slab_smaller_than_tile(self):
        assert _effective_tile(128, 48, 16) == 8  # slab 8 < tile

    def test_divisor_search(self):
        # slab = ceil(100/4) = 25, tile 10 -> largest divisor of 25 <= 10 is 5
        assert _effective_tile(100, 10, 4) == 5

    def test_single_node_identity(self):
        assert _effective_tile(128, 48, 1) == 48


class TestVersionTiling:
    def test_all_versions_use_ooc_rule(self):
        p = build_workload("trans", 16)
        for name in VERSION_NAMES:
            cfg = build_version(name, p)
            nest = cfg.program.nests[0]
            spec = cfg.tiling(nest)
            assert spec.tiled[-1] is False or nest.depth == 1, name


class TestHoptStorage:
    def params(self):
        from dataclasses import replace

        from repro.runtime import MachineParams

        return replace(MachineParams(), memory_fraction=4)

    def test_shared_array_chunked_when_optimizer_reconciles(self):
        """After c-opt, the second nest is transformed so S's footprints
        agree across nests — chunking stays profitable and is kept."""
        cfg = build_version(
            "h-opt", shared_array_program(), params=self.params()
        )
        assert isinstance(cfg.storage_spec["S"], InterleavedStoreSpec)

    def test_inconsistent_shared_array_stays_linear(self):
        """vpenta's X is read by two nests whose tile shapes differ even
        after optimization: chunking would over-read, so it stays on a
        plain linear layout."""
        cfg = build_version(
            "h-opt", build_workload("vpenta", 32), params=self.params()
        )
        assert isinstance(cfg.storage_spec["X"], LinearStoreSpec)
        assert isinstance(cfg.storage_spec["E"], LinearStoreSpec)

    def test_single_nest_arrays_chunked(self):
        cfg = build_version(
            "h-opt", shared_array_program(), params=self.params()
        )
        assert isinstance(cfg.storage_spec["A"], InterleavedStoreSpec)
        assert isinstance(cfg.storage_spec["B"], InterleavedStoreSpec)

    def test_coaccessed_same_shape_arrays_share_group(self):
        """vpenta's A and C are accessed identically in the forward
        elimination: they interleave into one chunked file."""
        cfg = build_version(
            "h-opt", build_workload("vpenta", 32), params=self.params()
        )
        spec = cfg.storage_spec
        groups = {}
        for name, s in spec.items():
            if isinstance(s, InterleavedStoreSpec):
                groups.setdefault(s.group, []).append(name)
        assert any(len(members) >= 2 for members in groups.values()), groups

    def test_blocks_respect_node_count(self):
        p = build_workload("trans", 64)
        cfg1 = build_version("h-opt", p, n_nodes=1)
        cfg16 = build_version("h-opt", p, n_nodes=16)
        b1 = next(
            s.block for s in cfg1.storage_spec.values()
            if isinstance(s, InterleavedStoreSpec)
        )
        b16 = next(
            s.block for s in cfg16.storage_spec.values()
            if isinstance(s, InterleavedStoreSpec)
        )
        assert max(b16) <= max(b1)


class TestDecisionsAttached:
    @pytest.mark.parametrize("name", ["l-opt", "d-opt", "c-opt", "h-opt"])
    def test_optimized_versions_carry_decision(self, name):
        cfg = build_version(name, build_workload("trans", 12))
        assert cfg.decision is not None
        assert cfg.decision.report

    @pytest.mark.parametrize("name", ["col", "row"])
    def test_baselines_have_no_decision(self, name):
        cfg = build_version(name, build_workload("trans", 12))
        assert cfg.decision is None

    def test_dopt_never_transforms_loops(self):
        for workload in ("mat", "adi", "syr2k"):
            cfg = build_version("d-opt", build_workload(workload, 10))
            for t in cfg.decision.transforms.values():
                assert t == IMat.identity(t.nrows)
