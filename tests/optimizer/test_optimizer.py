import numpy as np
import pytest

from repro.ir import ProgramBuilder
from repro.linalg import IMat
from repro.optimizer import (
    VERSION_NAMES,
    build_version,
    choose_direction_for_array,
    choose_layout_for_array,
    connected_components,
    estimate_nest_io,
    interference_graph,
    nest_cost,
    optimize_nest,
    optimize_program,
)


def motivating_program(n=8):
    """Paper Section 3.1: the two-nest U/V/W fragment."""
    b = ProgramBuilder("motivating", params=("N",), default_binding={"N": n})
    N = b.param("N")
    U = b.array("U", (N, N))
    V = b.array("V", (N, N))
    W = b.array("W", (N, N))
    with b.nest("nest1", weight=2) as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", 1, N)
        nb.assign(U[i, j], V[j, i] + 1.0)
    with b.nest("nest2") as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", 1, N)
        nb.assign(V[i, j], W[j, i] + 2.0)
    return b.build()


def two_component_program(n=6):
    """Paper Figure 1: {U,V,W} nests plus a disjoint {X,Y} nest."""
    b = ProgramBuilder("fig1", params=("N",), default_binding={"N": n})
    N = b.param("N")
    U = b.array("U", (N, N))
    V = b.array("V", (N, N))
    X = b.array("X", (N, N))
    Y = b.array("Y", (N, N))
    with b.nest("n1") as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", 1, N)
        nb.assign(U[i, j], V[j, i] + 1.0)
    with b.nest("n2") as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", 1, N)
        nb.assign(X[i, j], Y[j, i] + 1.0)
    return b.build()


class TestInterference:
    def test_bipartite_edges(self):
        p = motivating_program()
        g = interference_graph(p)
        assert g.has_edge(("nest", "nest1"), ("array", "V"))
        assert g.has_edge(("nest", "nest2"), ("array", "V"))
        assert not g.has_edge(("nest", "nest1"), ("array", "W"))

    def test_single_component_via_shared_array(self):
        comps = connected_components(motivating_program())
        assert len(comps) == 1
        nests, arrays = comps[0]
        assert nests == ["nest1", "nest2"]
        assert arrays == ["U", "V", "W"]

    def test_two_components(self):
        comps = connected_components(two_component_program())
        assert len(comps) == 2
        assert comps[0][1] == ["U", "V"]
        assert comps[1][1] == ["X", "Y"]


class TestCost:
    def test_weight_scales_cost(self):
        p = motivating_program()
        c1 = nest_cost(p.nests[0], {"N": 8})  # weight 2
        c2 = nest_cost(p.nests[1], {"N": 8})  # weight 1
        assert c1 == pytest.approx(2 * c2)

    def test_estimate_prefers_matching_layout(self):
        p = motivating_program()
        nest = p.nests[0]
        # q_last = (0,1): U wants row-major dir (0,1); V wants dir (1,0)
        good = estimate_nest_io(
            nest, {"U": (0, 1), "V": (1, 0)}, (0, 1), {"N": 8}
        )
        bad = estimate_nest_io(
            nest, {"U": (1, 0), "V": (0, 1)}, (0, 1), {"N": 8}
        )
        assert good < bad

    def test_temporal_cheapest(self):
        b = ProgramBuilder("t", params=("N",), default_binding={"N": 8})
        N = b.param("N")
        X = b.array("X", (N, N))
        Y = b.array("Y", (N, N))
        with b.nest() as nb:
            i = nb.loop("i", 1, N)
            j = nb.loop("j", 1, N)
            nb.assign(X[i, j], Y[i, i] + 1.0)  # Y temporal in j
        nest = b.build().nests[0]
        with_temporal = estimate_nest_io(nest, {"X": (0, 1)}, (0, 1), {"N": 8})
        all_spatial = estimate_nest_io(
            nest, {"X": (0, 1), "Y": (0, 1)}, (0, 1), {"N": 8}
        )
        assert with_temporal <= all_spatial


class TestChooseLayout:
    def test_paper_relation1_U(self):
        # L_U = I, q_last = (0,1) => direction (0,1), hyperplane (1,0) row-major
        l_u = IMat([[1, 0], [0, 1]])
        assert choose_direction_for_array([l_u], (0, 1)) == (0, 1)
        assert choose_layout_for_array([l_u], (0, 1)) == (1, 0)

    def test_paper_relation1_V(self):
        l_v = IMat([[0, 1], [1, 0]])
        assert choose_direction_for_array([l_v], (0, 1)) == (1, 0)
        assert choose_layout_for_array([l_v], (0, 1)) == (0, 1)

    def test_temporal_unconstrained(self):
        l = IMat([[1, 0], [1, 0]])
        assert choose_direction_for_array([l], (0, 1)) is None

    def test_conflict_majority_wins(self):
        l1 = IMat([[1, 0], [0, 1]])  # direction (0,1)
        l2 = IMat([[0, 1], [1, 0]])  # direction (1,0)
        d = choose_direction_for_array([l1, l1, l2], (0, 1))
        assert d == (0, 1)


class TestOptimizeNest:
    def test_data_only_first_nest(self):
        """Step 3.b on nest1: row-major U, column-major V (the paper's
        worked example)."""
        p = motivating_program()
        d = optimize_nest(p.nests[0], {}, {"N": 8}, allow_loop=False)
        assert d.is_identity
        assert d.new_layouts["U"] == (1, 0)   # row-major
        assert d.new_layouts["V"] == (0, 1)   # column-major

    def test_combined_second_nest_interchanges(self):
        """Step 3.c on nest2 with V fixed column-major: loop interchange
        plus row-major W."""
        p = motivating_program()
        d = optimize_nest(
            p.nests[1], {"V": (1, 0)}, {"N": 8}, allow_loop=True
        )
        assert d.q_last == (1, 0)
        assert d.t == IMat([[0, 1], [1, 0]])  # the interchange
        assert d.new_layouts["W"] == (1, 0)   # row-major
        assert "V" not in d.new_layouts       # already fixed

    def test_illegal_interchange_avoided(self):
        b = ProgramBuilder("t", params=("N",), default_binding={"N": 6})
        N = b.param("N")
        A = b.array("A", (N, N))
        with b.nest() as nb:
            i = nb.loop("i", 2, N)
            j = nb.loop("j", 1, N - 1)
            nb.assign(A[i, j], A[i - 1, j + 1] + 1.0)
        nest = b.build().nests[0]
        # force a fixed layout wanting the (illegal) interchange
        d = optimize_nest(nest, {"A": (1, 0)}, {"N": 6}, allow_loop=True)
        from repro.dependence import analyze_nest, transform_is_legal

        assert transform_is_legal(d.t, analyze_nest(nest))

    def test_rank1_arrays_ignored_for_layout(self):
        b = ProgramBuilder("t", params=("N",), default_binding={"N": 6})
        N = b.param("N")
        X = b.array("X", (N,))
        Y = b.array("Y", (N, N))
        with b.nest() as nb:
            i = nb.loop("i", 1, N)
            j = nb.loop("j", 1, N)
            nb.assign(Y[i, j], X[j] + 1.0)
        d = optimize_nest(b.build().nests[0], {}, {"N": 6}, allow_loop=False)
        assert "X" not in d.new_layouts
        assert d.new_layouts["Y"] == (1, 0)


class TestOptimizeProgram:
    def test_paper_worked_example_end_to_end(self):
        p = motivating_program()
        decision = optimize_program(p)
        assert decision.layouts["U"] == (1, 0)
        assert decision.layouts["V"] == (0, 1)
        assert decision.layouts["W"] == (1, 0)
        assert decision.transforms["nest1"] == IMat.identity(2)
        assert decision.transforms["nest2"] == IMat([[0, 1], [1, 0]])
        # transformed nest2 reads W along rows: stride-1 under row-major W
        nest2 = decision.program.nest("nest2")
        assert str(nest2.body[0]) == "V(v - 1, u - 1) = (W(u - 1, v - 1) + 2)"

    def test_all_references_optimized(self):
        """The paper's point: the combined approach optimizes all four
        references, which neither pure approach achieves."""
        from repro.optimizer.cost import access_is_spatial

        p = motivating_program()
        decision = optimize_program(p)
        for nest in decision.program.nests:
            q_last = tuple(
                1 if i == nest.depth - 1 else 0 for i in range(nest.depth)
            )
            for _, ref, _ in nest.refs():
                l = nest.access_matrix(ref)
                assert access_is_spatial(
                    l, q_last, decision.directions.get(ref.array.name)
                ), f"{ref} in {nest.name} unoptimized"

    def test_components_independent(self):
        p = two_component_program()
        decision = optimize_program(p)
        assert decision.layouts["U"] == (1, 0)
        assert decision.layouts["X"] == (1, 0)
        assert decision.layouts["V"] == (0, 1)
        assert decision.layouts["Y"] == (0, 1)

    def test_semantics_preserved(self):
        from repro.engine import interpret_program
        from repro.engine.interpreter import initial_arrays

        p = motivating_program(5)
        decision = optimize_program(p)
        init = initial_arrays(p, {"N": 5})
        expect = interpret_program(p, initial=init)
        got = interpret_program(decision.program, initial=init)
        for name in ("U", "V", "W"):
            np.testing.assert_allclose(got[name], expect[name])

    def test_data_only_mode(self):
        p = motivating_program()
        decision = optimize_program(p, allow_loop=False)
        for t in decision.transforms.values():
            assert t == IMat.identity(2)
        # V has conflicting requirements; U is still optimized
        assert decision.layouts["U"] == (1, 0)

    def test_loop_only_mode(self):
        p = motivating_program()
        col_dirs = {"U": (1, 0), "V": (1, 0), "W": (1, 0)}
        decision = optimize_program(
            p, allow_data=False, initial_directions=col_dirs
        )
        assert decision.decisions[0].new_layouts == {}


class TestVersions:
    def test_all_versions_build(self):
        p = motivating_program()
        for name in VERSION_NAMES:
            cfg = build_version(name, p)
            assert cfg.name == name
            assert cfg.layouts
            assert cfg.program.nests

    def test_unknown_version(self):
        with pytest.raises(ValueError):
            build_version("mystery", motivating_program())

    def test_col_row_layouts(self):
        p = motivating_program()
        col = build_version("col", p)
        row = build_version("row", p)
        assert col.layouts["U"].describe().startswith("linear layout g=column")
        assert row.layouts["U"].describe().startswith("linear layout g=row")

    def test_hopt_has_storage_spec(self):
        cfg = build_version("h-opt", motivating_program())
        assert cfg.storage_spec is not None
        assert set(cfg.storage_spec) == {"U", "V", "W"}

    def test_lopt_keeps_col_layouts(self):
        cfg = build_version("l-opt", motivating_program())
        assert all(
            "column" in l.describe() for l in cfg.layouts.values()
        )

    def test_version_describe(self):
        cfg = build_version("c-opt", motivating_program())
        assert "c-opt" in cfg.describe()
