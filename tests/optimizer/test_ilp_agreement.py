"""Solver agreement across the full workload registry.

The MILP formulation, the exhaustive enumerator and (where it reaches
the global optimum) the coordinate-descent fallback must agree — the
MILP's linearization of the (q, direction) product terms is exact, so
any objective gap is a formulation bug, not noise.  Run at small ``n``:
the q-option products stay tiny (max 24 combinations) so exhaustive
enumeration is cheap for every one of the 13 codes.
"""

import pytest

from repro.optimizer import optimize_program_ilp
from repro.optimizer.ilp import (
    _build_models,
    _total_cost,
    solve_descent,
    solve_exhaustive,
)
from repro.transforms import normalize_program
from repro.workloads import (
    analytics_names,
    build_analytics,
    build_workload,
    workload_names,
)

ALL = [(name, False) for name in workload_names()] + \
    [(name, True) for name in analytics_names()]


def _models(name, analytics, n=8):
    build = build_analytics if analytics else build_workload
    p = normalize_program(build(name, n))
    b = p.binding()
    models, dirs = _build_models(p, b)
    return p, b, models, dirs


@pytest.mark.parametrize("name,analytics", ALL)
class TestAllWorkloads:
    def test_milp_objective_matches_exhaustive(self, name, analytics):
        _, b, models, dirs = _models(name, analytics)
        _, _, cost_ex = solve_exhaustive(models, dirs, b)
        decision = optimize_program_ilp(
            normalize_program(
                (build_analytics if analytics else build_workload)(name, 8)
            ),
            solver="milp",
        )
        objective = next(
            ev.data["objective"] for ev in decision.report
            if ev.kind == "solver" and "objective" in ev.data
        )
        assert objective == pytest.approx(cost_ex, rel=1e-9)

    def test_milp_decision_is_cost_equivalent(self, name, analytics):
        """The MILP's chosen assignment, re-priced by the shared cost
        evaluator, costs exactly what the exhaustive optimum costs —
        solutions may differ only within cost ties."""
        from repro.optimizer.ilp import solve_milp

        _, b, models, dirs = _models(name, analytics)
        q_m, d_m, cost_m = solve_milp(models, dirs, b)
        _, _, cost_ex = solve_exhaustive(models, dirs, b)
        assert _total_cost(models, q_m, d_m, b) == \
            pytest.approx(cost_m, rel=1e-12)
        assert cost_m == pytest.approx(cost_ex, rel=1e-9)

    def test_descent_never_beats_exhaustive(self, name, analytics):
        _, b, models, dirs = _models(name, analytics)
        _, _, cost_ds = solve_descent(models, dirs, b)
        _, _, cost_ex = solve_exhaustive(models, dirs, b)
        assert cost_ds >= cost_ex - 1e-9


def test_descent_is_deterministic():
    _, b, models, dirs = _models("adi", False)
    assert solve_descent(models, dirs, b) == \
        solve_descent(models, dirs, b)
