import numpy as np
import pytest

from repro.engine import interpret_program
from repro.engine.interpreter import initial_arrays
from repro.ir import ProgramBuilder
from repro.linalg import IMat
from repro.optimizer import optimize_program, optimize_program_ilp
from repro.optimizer.ilp import _build_models, solve_exhaustive, solve_milp
from repro.workloads import build_workload, workload_names


def motivating_program(n=8):
    b = ProgramBuilder("motivating", params=("N",), default_binding={"N": n})
    N = b.param("N")
    U = b.array("U", (N, N))
    V = b.array("V", (N, N))
    W = b.array("W", (N, N))
    with b.nest("nest1", weight=2) as nb:
        i, j = nb.loop("i", 1, N), nb.loop("j", 1, N)
        nb.assign(U[i, j], V[j, i] + 1.0)
    with b.nest("nest2") as nb:
        i, j = nb.loop("i", 1, N), nb.loop("j", 1, N)
        nb.assign(V[i, j], W[j, i] + 2.0)
    return b.build()


class TestSolvers:
    def test_solver_name_validated(self):
        with pytest.raises(ValueError):
            optimize_program_ilp(motivating_program(), solver="simplex")

    def test_milp_matches_exhaustive_objective(self):
        p = motivating_program()
        b = p.binding()
        models, dirs = _build_models(p, b)
        _, _, cost_ex = solve_exhaustive(models, dirs, b)
        _, _, cost_milp = solve_milp(models, dirs, b)
        assert cost_milp == pytest.approx(cost_ex, rel=1e-9)

    @pytest.mark.parametrize("workload", ["trans", "gfunp", "adi", "syr2k"])
    def test_milp_matches_exhaustive_on_workloads(self, workload):
        p = build_workload(workload, 8)
        from repro.transforms import normalize_program

        p = normalize_program(p)
        b = p.binding()
        models, dirs = _build_models(p, b)
        _, _, cost_ex = solve_exhaustive(models, dirs, b)
        _, _, cost_milp = solve_milp(models, dirs, b)
        assert cost_milp == pytest.approx(cost_ex, rel=1e-9)


class TestOptimizeProgramILP:
    def test_worked_example_solution(self):
        """The ILP finds the paper's (optimal) solution for the
        motivating fragment."""
        decision = optimize_program_ilp(motivating_program())
        assert decision.directions["U"] == (0, 1)   # row-major
        assert decision.directions["V"] == (1, 0)   # column-major
        assert decision.directions["W"] == (0, 1)   # row-major
        assert decision.transforms["nest2"] == IMat([[0, 1], [1, 0]])

    def test_never_worse_than_greedy(self):
        """The exact optimum is at most the greedy algorithm's cost, in
        the shared cost model, on every workload."""
        from repro.optimizer.ilp import _build_models, _total_cost

        for workload in workload_names():
            p = build_workload(workload, 8)
            from repro.transforms import normalize_program

            norm = normalize_program(p)
            b = norm.binding()
            greedy = optimize_program(norm)
            exact = optimize_program_ilp(norm)
            models, dirs = _build_models(norm, b)
            q_greedy = {}
            for m in models:
                t = greedy.transforms[m.nest.name]
                q_inv = t.inverse_unimodular()
                q_greedy[m.nest.name] = q_inv.col(q_inv.ncols - 1)
            # greedy q may not be in the model's option set (non-elementary
            # completions); skip those nests by comparing total objectives
            try:
                greedy_cost = _total_cost(models, q_greedy, greedy.directions, b)
            except KeyError:
                continue
            exact_cost = _total_cost(
                models,
                {m.nest.name: exact.transforms and q_of(exact, m) for m in models},
                exact.directions,
                b,
            )
            assert exact_cost <= greedy_cost + 1e-6, workload

    def test_semantics_preserved(self):
        p = motivating_program(5)
        init = initial_arrays(p, {"N": 5})
        expected = interpret_program(p, initial=init)
        decision = optimize_program_ilp(p)
        got = interpret_program(decision.program, initial=init)
        for name in ("U", "V", "W"):
            np.testing.assert_allclose(got[name], expected[name])

    def test_transforms_are_legal(self):
        from repro.dependence import analyze_nest, transform_is_legal
        from repro.transforms import normalize_program

        for workload in ("vpenta", "syr2k", "htribk"):
            p = normalize_program(build_workload(workload, 8))
            decision = optimize_program_ilp(p)
            for nest in p.nests:
                t = decision.transforms[nest.name]
                assert transform_is_legal(t, analyze_nest(nest)), (
                    workload, nest.name,
                )


def q_of(decision, model):
    t = decision.transforms[model.nest.name]
    q_inv = t.inverse_unimodular()
    return q_inv.col(q_inv.ncols - 1)
