"""Collective execution through ``run_version_parallel``: the off-switch
is bit-identical, auto picks the right path per layout, and the stats
carry the phase breakdown."""

import pytest

from dataclasses import replace

from repro.experiments.harness import _scaled_params
from repro.ir import ProgramBuilder
from repro.optimizer import build_version
from repro.parallel import CollectiveConfig, run_version_parallel, speedup_curve

# geometry scaled to N=48 (realistic stripes/latency at test size); the
# default params put all of a 48x48 array in one stripe, which makes
# merging trivially win and the auto decision meaningless
PARAMS = replace(_scaled_params(48), n_io_nodes=4)
N_NODES = 4


def transpose_program(n=48):
    b = ProgramBuilder("trans", params=("N",), default_binding={"N": n})
    N = b.param("N")
    A, B = b.array("A", (N, N)), b.array("B", (N, N))
    with b.nest("t") as nb:
        i, j = nb.loop("i", 1, N), nb.loop("j", 1, N)
        nb.assign(A[i, j], B[j, i] + 1.0)
    return b.build()


def _run(version, collective, n_nodes=N_NODES):
    cfg = build_version(version, transpose_program())
    return run_version_parallel(
        cfg, n_nodes, params=PARAMS, collective=collective
    )


def _stats_fields(stats):
    return (
        stats.read_calls, stats.write_calls,
        stats.elements_read, stats.elements_written,
        stats.io_time_s, stats.compute_time_s,
        stats.redist_messages, stats.redist_elements, stats.redist_time_s,
    )


class TestOffSwitch:
    def test_never_closed_form_bit_identical(self):
        """mode='never' + closed-form simulator reproduces the plain
        independent run exactly — time and stats bit-identical."""
        base = _run("col", None)
        off = _run(
            "col", CollectiveConfig(mode="never", simulator="closed-form")
        )
        assert off.time_s == base.time_s
        assert _stats_fields(off.total_stats) == _stats_fields(
            base.total_stats
        )
        for b, o in zip(base.node_results, off.node_results):
            assert _stats_fields(b.stats) == _stats_fields(o.stats)
            assert b.io_node_load.tolist() == o.io_node_load.tolist()

    def test_none_has_no_report(self):
        assert _run("col", None).collective is None

    def test_never_event_sim_not_faster(self):
        base = _run("col", None)
        ev = _run("col", CollectiveConfig(mode="never"))
        assert ev.collective is not None and ev.collective.sim is not None
        assert ev.time_s >= base.time_s * (1 - 1e-12)


class TestAutoDecision:
    def test_col_layout_goes_two_phase(self):
        """Column-major layout under a row-order walk: interleaved short
        runs across nodes — the collective planner's target case."""
        run = _run("col", CollectiveConfig(mode="auto"))
        assert run.collective.n_collective_nests >= 1
        plan = run.collective.nest_plans[0]
        assert plan.wins and plan.call_reduction > 2.0

    def test_c_opt_layout_stays_independent(self):
        """After compile-time layout optimization each node's accesses
        conform already; auto must keep the nest independent (the
        paper's claim that the compiler obviates runtime collectives)."""
        run = _run("c-opt", CollectiveConfig(mode="auto"))
        assert run.collective.n_collective_nests == 0
        for plan in run.collective.nest_plans:
            assert not plan.wins

    def test_always_forces_two_phase(self):
        run = _run("c-opt", CollectiveConfig(mode="always"))
        assert run.collective.n_collective_nests >= 1


class TestTwoPhaseAccounting:
    def test_call_reduction_on_col(self):
        base = _run("col", None)
        coll = _run("col", CollectiveConfig(mode="always"))
        assert coll.total_io_calls * 2 <= base.total_io_calls

    def test_redistribution_in_stats(self):
        run = _run("col", CollectiveConfig(mode="always"))
        total = run.total_stats
        assert total.redist_messages > 0
        assert total.redist_elements > 0
        assert total.redist_time_s > 0
        assert "redist[" in str(total)

    def test_no_redistribution_when_independent(self):
        run = _run("col", CollectiveConfig(mode="never"))
        total = run.total_stats
        assert total.redist_messages == 0
        assert "redist[" not in str(total)

    def test_elements_conserved(self):
        """Two-phase covers every requested element but never moves more
        than independent did (the union dedupes sieve-filled overlap
        between different nodes' calls)."""
        base = _run("col", None)
        coll = _run("col", CollectiveConfig(mode="always"))
        assert 0 < coll.total_stats.elements_moved <= (
            base.total_stats.elements_moved
        )

    def test_compute_untouched(self):
        base = _run("col", None)
        coll = _run("col", CollectiveConfig(mode="always"))
        assert coll.total_stats.compute_time_s == pytest.approx(
            base.total_stats.compute_time_s
        )


class TestSimulatorChoice:
    def test_closed_form_vs_event(self):
        ev = _run("col", CollectiveConfig(mode="always", simulator="event"))
        cf = _run(
            "col", CollectiveConfig(mode="always", simulator="closed-form")
        )
        # same accounting, different pricing model
        assert _stats_fields(ev.total_stats) == _stats_fields(cf.total_stats)
        assert ev.collective.sim is not None
        assert cf.collective.sim is None
        # the event sim sees per-request queueing the closed form cannot
        assert ev.time_s >= cf.time_s * (1 - 1e-12)


class TestSpeedupCurve:
    def test_accepts_collective(self):
        cfg = build_version("col", transpose_program(32))
        curve = speedup_curve(
            cfg, (2,), params=PARAMS,
            collective=CollectiveConfig(mode="auto"),
        )
        assert set(curve) == {2} and curve[2] > 0
