"""Two-phase planner: conforming partition, aggregator merge pricing,
message conservation, and the win/lose decision."""

import numpy as np
import pytest

from repro.collective.planner import (
    CollectiveConfig,
    choose_aggregators,
    conforming_partition,
    io_node_loads,
    plan_nest_collective,
    union_runs,
)
from repro.runtime import IOContext, MachineParams
from repro.runtime.stats import plan_runs

PARAMS = MachineParams(
    n_io_nodes=4,
    stripe_bytes=16 * 8,          # 16-element stripes
    io_latency_s=0.01,
    io_bandwidth_bps=8e3,
    max_request_bytes=64 * 8,
)


class TestConfig:
    def test_defaults_valid(self):
        cfg = CollectiveConfig()
        assert cfg.mode == "auto" and cfg.simulator == "event"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "sometimes"},
            {"simulator": "analytic"},
            {"cb_nodes": 0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CollectiveConfig(**kwargs)


class TestConformingPartition:
    def test_covers_range_contiguously(self):
        doms = conforming_partition(PARAMS, 5, 200, 3)
        assert doms[0][0] == 5 and doms[-1][1] == 200
        for (a, b), (c, d) in zip(doms, doms[1:]):
            assert b == c

    def test_interior_bounds_stripe_aligned(self):
        se = PARAMS.stripe_elements
        doms = conforming_partition(PARAMS, 0, 20 * se, 4)
        for _, end in doms[:-1]:
            assert end % se == 0

    def test_more_domains_than_stripes(self):
        se = PARAMS.stripe_elements
        doms = conforming_partition(PARAMS, 0, 2 * se, 5)
        nonempty = [d for d in doms if d[1] > d[0]]
        assert len(nonempty) == 2
        assert sum(b - a for a, b in doms) == 2 * se

    def test_empty_range(self):
        assert conforming_partition(PARAMS, 7, 7, 3) == [(7, 7)] * 3


class TestUnionRuns:
    def test_overlapping_runs_merge(self):
        off, ln = union_runs(
            np.array([0, 4, 20]), np.array([8, 8, 4])
        )
        assert off.tolist() == [0, 20]
        assert ln.tolist() == [12, 4]

    def test_duplicate_runs_collapse(self):
        off, ln = union_runs(np.array([8, 8]), np.array([4, 4]))
        assert off.tolist() == [8] and ln.tolist() == [4]

    def test_contained_run_absorbed(self):
        off, ln = union_runs(np.array([0, 2]), np.array([10, 3]))
        assert off.tolist() == [0] and ln.tolist() == [10]


class TestChooseAggregators:
    def test_spread_over_ranks(self):
        assert choose_aggregators(8, 4) == (0, 2, 5, 7)

    def test_capped_at_nodes(self):
        assert choose_aggregators(2, 16) == (0, 1)


class TestIONodeLoads:
    def test_matches_record_runs(self):
        """The planner's load vector must reproduce the recorder's
        striping arithmetic exactly."""
        offsets = np.array([3, 40, 100, 130], dtype=np.int64)
        lengths = np.array([20, 10, 25, 2], dtype=np.int64)
        ctx = IOContext(PARAMS)
        ctx.record_runs(0, offsets, lengths, is_write=False)
        np.testing.assert_allclose(
            io_node_loads(PARAMS, offsets, lengths), ctx.io_node_load
        )


def _trace(runs, base=0, write=False):
    return [(base, off, ln, write) for off, ln in runs]


class TestPlanNest:
    def test_no_requests_returns_none(self):
        assert plan_nest_collective(PARAMS, "n", [[], []]) is None

    def test_single_node_cb1_prices_like_plan_runs(self):
        """One node, one aggregator: the aggregator's calls are exactly
        ``plan_runs`` over the node's (unioned) runs — bit-identical
        pricing with the independent path's pure planner."""
        runs = [(0, 10), (30, 10), (70, 100)]
        plan = plan_nest_collective(
            PARAMS, "n", [_trace(runs)], cb_nodes=1
        )
        exp_off, exp_len = plan_runs(
            PARAMS,
            np.array([o for o, _ in runs]),
            np.array([l for _, l in runs]),
        )
        (access,) = plan.accesses
        assert access.agg_offsets[0].tolist() == exp_off.tolist()
        assert access.agg_lengths[0].tolist() == exp_len.tolist()
        assert plan.two_phase_calls == exp_off.size
        # the single node is its own aggregator: nothing to redistribute
        assert plan.redist_messages == 0

    def test_message_volume_conservation(self):
        """Every requested element is either aggregator-local or covered
        by exactly one message."""
        se = PARAMS.stripe_elements
        traces = [
            _trace([(k * 4, 2) for k in range(16)]),        # rank 0
            _trace([(k * 4 + 2, 2) for k in range(16)]),    # rank 1
            _trace([(64 * se, 4 * se)]),                    # rank 2
        ]
        plan = plan_nest_collective(PARAMS, "n", traces, cb_nodes=2)
        requested = sum(
            ln for t in traces for _, _, ln, _ in t
        )
        local = 0
        for access in plan.accesses:
            for a_idx, agg_rank in enumerate(plan.aggregators):
                dlo, dhi = access.domains[a_idx]
                for _, off, ln, _ in traces[agg_rank]:
                    local += max(
                        0, min(off + ln, dhi) - max(off, dlo)
                    )
        assert plan.redist_elements + local == requested

    def test_reads_and_writes_planned_separately(self):
        traces = [
            _trace([(0, 8)]) + _trace([(0, 8)], write=True),
            _trace([(8, 8)]) + _trace([(8, 8)], write=True),
        ]
        plan = plan_nest_collective(PARAMS, "n", traces, cb_nodes=1)
        directions = sorted(a.is_write for a in plan.accesses)
        assert directions == [False, True]

    def test_interleaved_pattern_wins(self):
        """Four nodes with interleaved short runs (a non-conforming
        layout): aggregation merges them into long contiguous calls."""
        n, chunk = 4, 2
        traces = [
            _trace([(k * n * chunk + r * chunk, chunk) for k in range(64)])
            for r in range(n)
        ]
        plan = plan_nest_collective(PARAMS, "n", traces, cb_nodes=2)
        assert plan.call_reduction >= 2.0
        assert plan.wins
        assert plan.two_phase_cost_s < plan.independent_cost_s

    def test_conforming_pattern_loses(self):
        """Each node already reads one long contiguous slab: nothing to
        merge, and redistribution is pure overhead — the paper's point
        that compile-time layout optimization beats runtime collectives."""
        slab = 64
        traces = [_trace([(r * slab, slab)]) for r in range(4)]
        plan = plan_nest_collective(PARAMS, "n", traces, cb_nodes=2)
        assert not plan.wins

    def test_weight_scales_both_costs(self):
        traces = [_trace([(k * 8, 2) for k in range(32)]) for _ in (0, 1)]
        p1 = plan_nest_collective(PARAMS, "n", traces, weight=1)
        p5 = plan_nest_collective(PARAMS, "n", traces, weight=5)
        assert p5.independent_cost_s == pytest.approx(5 * p1.independent_cost_s)
        assert p5.two_phase_cost_s == pytest.approx(5 * p1.two_phase_cost_s)
        assert p5.wins == p1.wins
