"""Event-driven simulator: determinism, reduction to the closed form,
FIFO contention, the shared net channel, and overlap credit."""

import numpy as np
import pytest

from repro import MachineParams, OOCExecutor
from repro.collective.sim import (
    NET,
    NodeTimeline,
    SimOp,
    event_makespan,
    io_node_of,
    nest_ops,
    simulate,
)
from repro.engine.executor import NestRun
from repro.parallel.model import makespan
from repro.runtime.stats import IOStats

PARAMS = MachineParams(n_io_nodes=4)


def io(node, service):
    return SimOp("io", resource=node, service_s=service)


def compute(d):
    return SimOp("compute", duration_s=d)


def net(service):
    return SimOp("net", resource=NET, service_s=service)


class TestSimulateCore:
    def test_empty(self):
        res = simulate(PARAMS, [])
        assert res.makespan_s == 0.0 and res.n_events == 0

    def test_compute_only(self):
        res = simulate(PARAMS, [NodeTimeline(0, [compute(1.5), compute(0.5)])])
        assert res.makespan_s == 2.0
        assert res.n_events == 0  # compute never enters a queue

    def test_serial_no_contention_is_sum(self):
        """One node: makespan is exactly serial compute + io."""
        tl = NodeTimeline(0, [compute(1.0), io(2, 0.25), compute(0.5), io(2, 0.25)])
        res = simulate(PARAMS, [tl])
        assert res.makespan_s == pytest.approx(2.0)
        assert res.waited_requests == 0
        assert res.io_busy_s[2] == pytest.approx(0.5)

    def test_fifo_contention_hand_computed(self):
        """Two nodes hit I/O node 0: node A arrives at t=0 (service 1.0),
        node B arrives at t=0.5 and must queue until t=1.0."""
        a = NodeTimeline(0, [io(0, 1.0)])
        b = NodeTimeline(1, [compute(0.5), io(0, 1.0)])
        res = simulate(PARAMS, [a, b])
        assert res.node_finish_s[0] == pytest.approx(1.0)
        assert res.node_finish_s[1] == pytest.approx(2.0)
        assert res.waited_requests == 1
        assert res.wait_time_s == pytest.approx(0.5)

    def test_tie_broken_by_node_index(self):
        """Simultaneous arrivals at the same I/O node: lower rank first."""
        a = NodeTimeline(0, [io(1, 0.3)])
        b = NodeTimeline(1, [io(1, 0.3)])
        res = simulate(PARAMS, [a, b])
        assert res.node_finish_s == pytest.approx([0.3, 0.6])

    def test_distinct_io_nodes_parallel(self):
        tls = [NodeTimeline(i, [io(i, 1.0)]) for i in range(4)]
        res = simulate(PARAMS, tls)
        assert res.makespan_s == pytest.approx(1.0)
        assert res.waited_requests == 0

    def test_net_is_single_shared_channel(self):
        """Messages from different nodes serialize on the one channel
        even though I/O nodes would have run them in parallel."""
        tls = [NodeTimeline(i, [net(0.2)]) for i in range(3)]
        res = simulate(PARAMS, tls)
        assert res.makespan_s == pytest.approx(0.6)
        assert res.net_busy_s == pytest.approx(0.6)
        assert res.waited_requests == 2

    def test_determinism(self):
        rng = np.random.default_rng(7)
        tls = [
            NodeTimeline(
                i,
                [
                    op
                    for _ in range(20)
                    for op in (
                        compute(float(rng.random()) * 0.01),
                        io(int(rng.integers(4)), float(rng.random()) * 0.02),
                    )
                ],
            )
            for i in range(6)
        ]
        r1 = simulate(PARAMS, tls)
        r2 = simulate(PARAMS, tls)
        assert r1.makespan_s == r2.makespan_s
        assert r1.node_finish_s == r2.node_finish_s
        assert r1.wait_time_s == r2.wait_time_s


class TestOverlapCredit:
    def test_credit_hides_blocked_time(self):
        tl = NodeTimeline(
            0, [compute(1.0), io(0, 0.4)], overlap_credit_s=0.4
        )
        res = simulate(PARAMS, [tl])
        # the whole call hides under the preceding compute
        assert res.node_finish_s[0] == pytest.approx(1.0)

    def test_credit_cannot_rewind_before_arrival(self):
        tl = NodeTimeline(0, [io(0, 0.4)], overlap_credit_s=10.0)
        res = simulate(PARAMS, [tl])
        assert res.node_finish_s[0] == pytest.approx(0.0)

    def test_credit_is_finite(self):
        # distinct I/O nodes, so only the credit (not I/O-node
        # occupancy) decides the second call's fate
        tl = NodeTimeline(
            0,
            [compute(1.0), io(0, 0.4), io(1, 0.4)],
            overlap_credit_s=0.4,
        )
        res = simulate(PARAMS, [tl])
        # first call hidden, second paid in full
        assert res.node_finish_s[0] == pytest.approx(1.4)

    def test_credit_does_not_free_io_node_early(self):
        """Hiding a node's blocked time must not shorten the I/O node's
        occupancy: a second call to the same I/O node still queues."""
        tl = NodeTimeline(
            0,
            [compute(1.0), io(0, 0.4), io(0, 0.4)],
            overlap_credit_s=0.4,
        )
        res = simulate(PARAMS, [tl])
        assert res.node_finish_s[0] == pytest.approx(1.8)
        assert res.waited_requests == 1

    def test_credit_never_slower(self):
        ops = [compute(0.3), io(1, 0.2), compute(0.3), io(1, 0.2)]
        base = simulate(PARAMS, [NodeTimeline(0, list(ops))])
        cred = simulate(
            PARAMS, [NodeTimeline(0, list(ops), overlap_credit_s=0.25)]
        )
        assert cred.makespan_s <= base.makespan_s


class TestNestOps:
    def test_missing_trace_raises(self):
        nr = NestRun("n", None, IOStats(), 0, trace=None)
        with pytest.raises(ValueError, match="trace"):
            nest_ops(PARAMS, nr)

    def test_compute_total_preserved(self):
        nr = NestRun(
            "n",
            None,
            IOStats(compute_time_s=3.0),
            0,
            trace=[(0, 0, 8, False), (0, 16, 8, False)],
            trace_weight=3,
        )
        ops = nest_ops(PARAMS, nr)
        assert sum(o.duration_s for o in ops if o.kind == "compute") == (
            pytest.approx(3.0)
        )
        assert sum(1 for o in ops if o.kind == "io") == 6

    def test_io_routed_to_first_stripe_node(self):
        se = PARAMS.stripe_elements
        nr = NestRun(
            "n", None, IOStats(), 0, trace=[(0, 5 * se, 4, False)]
        )
        (op,) = nest_ops(PARAMS, nr)
        assert op.resource == io_node_of(PARAMS, 5 * se) == 5 % 4


def _run_nodes(n_nodes, version="col", n=32):
    from repro.ir import ProgramBuilder
    from repro.optimizer import build_version
    from repro.runtime import ParallelFileSystem

    b = ProgramBuilder("trans", params=("N",), default_binding={"N": n})
    N = b.param("N")
    A, B = b.array("A", (N, N)), b.array("B", (N, N))
    with b.nest("t") as nb:
        i, j = nb.loop("i", 1, N), nb.loop("j", 1, N)
        nb.assign(A[i, j], B[j, i] + 1.0)
    cfg = build_version(version, b.build())

    params = MachineParams(n_io_nodes=4)
    binding = cfg.program.binding(None)
    total = sum(int(np.prod(a.shape(binding))) for a in cfg.program.arrays)
    budget = max(64, total // params.memory_fraction)
    stagger = max(1, total // max(1, n_nodes))
    results = []
    for rank in range(n_nodes):
        pfs = ParallelFileSystem(params)
        pfs.advance(rank * stagger)
        ex = OOCExecutor(
            cfg.program,
            cfg.layouts,
            params=params,
            binding=binding,
            memory_budget=budget,
            real=False,
            tiling=cfg.tiling,
            storage_spec=cfg.storage_spec,
            pfs=pfs,
            node_slice=(rank, n_nodes) if n_nodes > 1 else None,
            trace=True,
        )
        results.append(ex.run())
    return params, results


class TestReduction:
    def test_single_node_matches_closed_form(self):
        """Acceptance criterion: with no contention possible the event
        sim reduces to ``makespan()`` within 1% (in fact exactly)."""
        params, results = _run_nodes(1)
        closed = makespan(results)
        sim = event_makespan(params, results)
        assert sim.makespan_s == pytest.approx(closed, rel=0.01)
        assert sim.waited_requests == 0

    def test_contention_only_adds_time(self):
        params, results = _run_nodes(4)
        closed = makespan(results)
        sim = event_makespan(params, results)
        assert sim.makespan_s >= closed * (1 - 1e-12)
