import pytest

from repro.engine import nest_footprints, plan_nest, ref_footprint, tiling_band_legal
from repro.dependence import analyze_nest
from repro.ir import ProgramBuilder
from repro.transforms import TilingSpec, no_tiling, ooc_tiling, traditional_tiling


def matmul_program(n=8):
    b = ProgramBuilder("mat", params=("N",), default_binding={"N": n})
    N = b.param("N")
    A = b.array("A", (N, N))
    B = b.array("B", (N, N))
    C = b.array("C", (N, N))
    with b.nest("mm") as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", 1, N)
        k = nb.loop("k", 1, N)
        nb.assign(C[i, j], C[i, j] + A[i, k] * B[k, j])
    return b.build()


def stencil_program(n=8):
    b = ProgramBuilder("st", params=("N",), default_binding={"N": n})
    N = b.param("N")
    A = b.array("A", (N, N))
    with b.nest("s") as nb:
        i = nb.loop("i", 2, N)
        j = nb.loop("j", 2, N)
        nb.assign(A[i, j], A[i - 1, j - 1] + 1.0)
    return b.build()


class TestRefFootprint:
    def test_simple_box(self):
        p = matmul_program()
        nest = p.nests[0]
        aref = [r for _, r, _ in nest.refs() if r.array.name == "A"][0]
        # A[i, k] is stored as A(i-1, k-1): the footprint is 0-based
        fp = ref_footprint(aref, {"i": (2, 4), "k": (1, 8)}, {"N": 8})
        assert fp == ((1, 3), (0, 7))

    def test_negative_coefficient(self):
        b = ProgramBuilder("t", params=("N",), default_binding={"N": 8})
        N = b.param("N")
        A = b.array("A", (N, N))
        with b.nest() as nb:
            i = nb.loop("i", 1, N)
            j = nb.loop("j", 1, N)
            nb.assign(A[N - i, j], 0.0)
        nest = b.build().nests[0]
        ref = nest.body[0].lhs
        fp = ref_footprint(ref, {"i": (2, 3), "j": (1, 1)}, {"N": 8})
        assert fp == ((4, 5), (0, 0))

    def test_param_only_subscript(self):
        b = ProgramBuilder("t", params=("N",), default_binding={"N": 8})
        N = b.param("N")
        A = b.array("A", (N, N))
        with b.nest() as nb:
            i = nb.loop("i", 1, N)
            j = nb.loop("j", 1, N)
            nb.assign(A[N, j], A[i, j] + 1.0)
        nest = b.build().nests[0]
        fp = ref_footprint(nest.body[0].lhs, {"j": (1, 4)}, {"N": 8})
        assert fp == ((7, 7), (0, 3))


class TestNestFootprints:
    def test_union_and_flags(self):
        p = matmul_program()
        nest = p.nests[0]
        shapes = {a.name: a.shape({"N": 8}) for a in p.arrays}
        fps = nest_footprints(
            nest, {"i": (1, 2), "j": (3, 4), "k": (1, 8)}, {"N": 8}, shapes
        )
        region_c, read_c, written_c = fps["C"]
        assert region_c == ((0, 1), (2, 3))
        assert read_c and written_c
        region_a, read_a, written_a = fps["A"]
        assert region_a == ((0, 1), (0, 7))
        assert read_a and not written_a

    def test_clipped_to_shape(self):
        p = stencil_program()
        nest = p.nests[0]
        shapes = {"A": (8, 8)}
        fps = nest_footprints(nest, {"i": (2, 20), "j": (2, 3)}, {"N": 8}, shapes)
        region, _, _ = fps["A"]
        # A[i-1,...] stored at i-2; clipped to the 8-row array
        assert region[0] == (0, 7)


class TestTilingLegality:
    def test_matmul_fully_permutable(self):
        nest = matmul_program().nests[0]
        edges = analyze_nest(nest)
        assert tiling_band_legal(edges, TilingSpec((True, True, True)))

    def test_antidiagonal_stencil_not_permutable(self):
        b = ProgramBuilder("t", params=("N",), default_binding={"N": 6})
        N = b.param("N")
        A = b.array("A", (N, N))
        with b.nest() as nb:
            i = nb.loop("i", 2, N)
            j = nb.loop("j", 1, N - 1)
            nb.assign(A[i, j], A[i - 1, j + 1] + 1.0)
        nest = b.build().nests[0]
        edges = analyze_nest(nest)
        assert not tiling_band_legal(edges, TilingSpec((True, True)))
        assert tiling_band_legal(edges, TilingSpec((True, False)))


class TestPlanNest:
    def shapes(self, p, n=8):
        return {a.name: a.shape({"N": n}) for a in p.arrays}

    def test_block_fits_budget(self):
        p = matmul_program()
        nest = p.nests[0]
        plan = plan_nest(nest, ooc_tiling(nest), 60, {"N": 8}, self.shapes(p))
        assert plan.footprint_elements <= 60
        assert plan.tile_size >= 1
        assert not plan.over_budget

    def test_large_budget_single_tile(self):
        p = matmul_program()
        nest = p.nests[0]
        plan = plan_nest(nest, ooc_tiling(nest), 10**6, {"N": 8}, self.shapes(p))
        assert plan.tile_size >= 8

    def test_no_tiling_plan(self):
        p = matmul_program()
        nest = p.nests[0]
        plan = plan_nest(nest, no_tiling(nest), 10**6, {"N": 8}, self.shapes(p))
        assert plan.tile_size == 0
        assert plan.tiled_levels == ()

    def test_illegal_spec_degrades(self):
        b = ProgramBuilder("t", params=("N",), default_binding={"N": 6})
        N = b.param("N")
        A = b.array("A", (N, N))
        with b.nest() as nb:
            i = nb.loop("i", 2, N)
            j = nb.loop("j", 1, N - 1)
            nb.assign(A[i, j], A[i - 1, j + 1] + 1.0)
        p = b.build()
        nest = p.nests[0]
        plan = plan_nest(
            nest, traditional_tiling(nest), 10**6, {"N": 6}, self.shapes(p, 6)
        )
        assert plan.degraded
        assert plan.spec.tiled == (True, False)

    def test_over_budget_marked(self):
        p = matmul_program()
        nest = p.nests[0]
        plan = plan_nest(nest, ooc_tiling(nest), 8, {"N": 8}, self.shapes(p))
        # footprint includes full k rows/cols: can't fit 8 elements
        assert plan.over_budget or plan.footprint_elements <= 8

    def test_describe(self):
        p = matmul_program()
        nest = p.nests[0]
        plan = plan_nest(nest, ooc_tiling(nest), 60, {"N": 8}, self.shapes(p))
        assert "B=" in plan.describe()
