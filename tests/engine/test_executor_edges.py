"""Edge behaviors of the executor and planner."""

import numpy as np
import pytest

from repro.engine import OOCExecutor
from repro.engine.executor import LinearStoreSpec
from repro.ir import ProgramBuilder
from repro.layout import diagonal, row_major
from repro.runtime import MachineParams

SMALL = MachineParams(n_io_nodes=2, stripe_bytes=128, io_latency_s=0.001)


def big_inner_program(n=12):
    """Untiled inner level spans too much data for the budget."""
    b = ProgramBuilder("big", params=("N",), default_binding={"N": n})
    N = b.param("N")
    A = b.array("A", (N, N))
    B2 = b.array("B", (N, N))
    with b.nest("n") as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", 1, N)
        nb.assign(A[i, j], B2[j, i] + 1.0)
    return b.build()


class TestBudgetEdges:
    def test_over_budget_plan_still_runs(self):
        # budget below one row of footprint: plan falls back, marks over
        p = big_inner_program()
        ex = OOCExecutor(p, params=SMALL, real=False, memory_budget=70)
        res = ex.run()
        assert res.stats.calls > 0
        # peak above budget is recorded, not hidden
        assert res.peak_memory >= 0

    def test_over_budget_real_execution_correct(self):
        from repro.engine import interpret_program
        from repro.engine.interpreter import initial_arrays

        p = big_inner_program(8)
        init = initial_arrays(p, p.binding())
        expected = interpret_program(p, initial=init)
        ex = OOCExecutor(
            p, params=SMALL, real=True, memory_budget=70, initial=init
        )
        ex.run()
        np.testing.assert_allclose(ex.array_data("A"), expected["A"])

    def test_generous_budget_zero_overruns(self):
        p = big_inner_program(8)
        ex = OOCExecutor(p, params=SMALL, real=False, memory_budget=10**6)
        res = ex.run()
        assert res.over_budget_tiles == 0
        assert res.peak_memory <= 10**6


class TestStorageSpecEdges:
    def test_explicit_linear_spec_overrides_layout(self):
        p = big_inner_program(8)
        ex = OOCExecutor(
            p,
            layouts={"A": row_major(2), "B": row_major(2)},
            storage_spec={"A": LinearStoreSpec(diagonal())},
            params=SMALL,
            real=False,
            memory_budget=200,
        )
        # A uses the diagonal layout from the spec, B the layouts dict
        assert ex._stores["A"].arrays["A"].layout.hyperplane.g == (1, -1)
        assert ex._stores["B"].arrays["B"].layout.hyperplane.g == (1, 0)

    def test_default_layout_is_row_major(self):
        p = big_inner_program(8)
        ex = OOCExecutor(p, params=SMALL, real=False, memory_budget=200)
        assert ex._stores["A"].arrays["A"].layout.hyperplane.g == (1, 0)


class TestTilingCallableOrMapping:
    def test_mapping_of_specs(self):
        from repro.transforms.tiling import TilingSpec

        p = big_inner_program(8)
        ex = OOCExecutor(
            p, params=SMALL, real=False, memory_budget=10**6,
            tiling={"n": TilingSpec((True, True))},
        )
        res = ex.run()
        assert res.nest_runs[0].plan.spec.tiled == (True, True)

    def test_unknown_nest_in_mapping_raises(self):
        from repro.transforms.tiling import TilingSpec

        p = big_inner_program(8)
        ex = OOCExecutor(
            p, params=SMALL, real=False, memory_budget=10**6,
            tiling={"other": TilingSpec((True, True))},
        )
        with pytest.raises(KeyError):
            ex.run()


class TestGlobalOptOrder:
    def test_program_order_supported(self):
        from repro.optimizer import optimize_program
        from repro.workloads import build_workload

        p = build_workload("gfunp", 10)
        d = optimize_program(p, nest_order="program")
        assert d.layouts  # still optimizes, just in textual order

    def test_bad_order_rejected(self):
        from repro.optimizer import optimize_program

        with pytest.raises(ValueError):
            optimize_program(big_inner_program(8), nest_order="random")


class TestDistanceCapping:
    def test_directions_survive_capping(self):
        from repro.dependence import analyze_nest
        from repro.dependence.analyzer import _DISTANCES_PER_EDGE_CAP

        b = ProgramBuilder("t", params=("N",), default_binding={"N": 20})
        N = b.param("N")
        A = b.array("A", (N, N))
        with b.nest() as nb:
            i = nb.loop("i", 1, N)
            j = nb.loop("j", 1, N)
            nb.assign(A[i, j], A[j, i] + 1.0)
        # large binding: the transpose dependence has ~N^2 distances
        edges = analyze_nest(b.build().nests[0], binding={"N": 20})
        for e in edges:
            assert len(e.distances) <= _DISTANCES_PER_EDGE_CAP
            # both orientations of the antisymmetric pattern kept
            kinds = {tuple(1 if v > 0 else (-1 if v < 0 else 0) for v in d)
                     for d in e.distances}
            assert kinds  # non-empty after capping
