import pytest

from repro.engine import generate_tiled_code, plan_nest
from repro.engine.codegen import generate_nest_code
from repro.ir import ProgramBuilder
from repro.layout import col_major, row_major
from repro.transforms import no_tiling, ooc_tiling, traditional_tiling


def program(n=8):
    b = ProgramBuilder("cg", params=("N",), default_binding={"N": n})
    N = b.param("N")
    U = b.array("U", (N, N))
    V = b.array("V", (N, N))
    with b.nest("nest1") as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", 1, N)
        nb.assign(U[i, j], V[j, i] + 1.0)
    return b.build()


LAYOUTS = {"U": row_major(2), "V": col_major(2)}


class TestGenerateNestCode:
    def test_ooc_tiling_structure(self):
        nest = program().nests[0]
        text = generate_nest_code(nest, ooc_tiling(nest), LAYOUTS)
        lines = text.splitlines()
        # tile loop for i only, element loops inside, balanced end-dos
        assert lines[0].startswith("do IT = ")
        assert "do JT" not in text
        assert text.count("end do") == 3  # i, j element loops + IT tile loop
        assert "passion_read_tiles(U, V)" in text
        assert "passion_write_tiles(U)" in text

    def test_traditional_tiling_tiles_all(self):
        nest = program().nests[0]
        text = generate_nest_code(nest, traditional_tiling(nest), LAYOUTS)
        assert "do IT = " in text and "do JT = " in text
        # element loops clipped against both tile counters
        assert "max(1, IT)" in text
        assert "min(N, JT+B-1)" in text

    def test_untiled(self):
        nest = program().nests[0]
        text = generate_nest_code(nest, no_tiling(nest), LAYOUTS)
        assert "IT" not in text
        assert "do i = 1, N" in text

    def test_statement_rendered(self):
        nest = program().nests[0]
        text = generate_nest_code(nest, ooc_tiling(nest), LAYOUTS)
        assert "U(i - 1, j - 1) = (V(j - 1, i - 1) + 1)" in text


class TestGenerateTiledCode:
    def test_layout_header(self):
        p = program()
        text = generate_tiled_code(p, LAYOUTS)
        assert "! file layout of U: linear layout g=row-major" in text
        assert "! file layout of V: linear layout g=column-major" in text

    def test_default_layout_annotated(self):
        p = program()
        text = generate_tiled_code(p, {})
        assert "row-major (default)" in text

    def test_plan_tile_size_shown(self):
        p = program()
        nest = p.nests[0]
        shapes = {a.name: a.shape({"N": 8}) for a in p.arrays}
        plan = plan_nest(nest, ooc_tiling(nest), 64, {"N": 8}, shapes)
        text = generate_tiled_code(p, LAYOUTS, plans={"nest1": plan})
        assert f"tile size B = {plan.tile_size}" in text

    def test_explicit_specs(self):
        p = program()
        nest = p.nests[0]
        text = generate_tiled_code(
            p, LAYOUTS, specs={"nest1": traditional_tiling(nest)}
        )
        assert "do JT" in text
