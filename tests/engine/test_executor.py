import numpy as np
import pytest

from repro.engine import OOCExecutor, generate_tiled_code, interpret_program
from repro.engine.executor import InterleavedStoreSpec, LinearStoreSpec
from repro.engine.interpreter import initial_arrays
from repro.ir import ProgramBuilder
from repro.layout import col_major, row_major
from repro.runtime import MachineParams
from repro.transforms import no_tiling, ooc_tiling, traditional_tiling


def motivating_program(n=6):
    """The paper's Section 3.1 two-nest fragment."""
    b = ProgramBuilder("motivating", params=("N",), default_binding={"N": n})
    N = b.param("N")
    U = b.array("U", (N, N))
    V = b.array("V", (N, N))
    W = b.array("W", (N, N))
    with b.nest("nest1") as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", 1, N)
        nb.assign(U[i, j], V[j, i] + 1.0)
    with b.nest("nest2") as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", 1, N)
        nb.assign(V[i, j], W[j, i] + 2.0)
    return b.build()


def matmul_program(n=6, weight=1):
    b = ProgramBuilder("mat", params=("N",), default_binding={"N": n})
    N = b.param("N")
    A = b.array("A", (N, N))
    B = b.array("B", (N, N))
    C = b.array("C", (N, N))
    with b.nest("mm", weight=weight) as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", 1, N)
        k = nb.loop("k", 1, N)
        nb.assign(C[i, j], C[i, j] + A[i, k] * B[k, j])
    return b.build()


SMALL = MachineParams(n_io_nodes=4, stripe_bytes=64, io_latency_s=0.01)


class TestInterpreter:
    def test_matmul_matches_numpy(self):
        p = matmul_program(5)
        init = initial_arrays(p, {"N": 5})
        out = interpret_program(p, initial=init)
        a, b_, c = init["A"], init["B"], init["C"]
        expect = c + a @ b_
        np.testing.assert_allclose(out["C"], expect)

    def test_weight_repeats_nest(self):
        p = matmul_program(4, weight=2)
        init = initial_arrays(p, {"N": 4})
        once = interpret_program(matmul_program(4, weight=1), initial=init)
        twice = interpret_program(p, initial=init)
        again = once["C"] + init["A"] @ init["B"]
        np.testing.assert_allclose(twice["C"], again)

    def test_sequential_nests_flow(self):
        p = motivating_program(4)
        init = initial_arrays(p, {"N": 4})
        out = interpret_program(p, initial=init)
        # nest1 reads the ORIGINAL V; nest2 then overwrites V
        np.testing.assert_allclose(out["U"], init["V"].T + 1.0)
        np.testing.assert_allclose(out["V"], init["W"].T + 2.0)


class TestOOCExecutorSemantics:
    """Transformations must not change results: out-of-core execution,
    any layouts, any tiling — always the same arrays as the in-core
    reference interpreter."""

    @pytest.mark.parametrize("tiling", [ooc_tiling, traditional_tiling, no_tiling])
    def test_motivating_all_tilings(self, tiling):
        p = motivating_program(5)
        init = initial_arrays(p, {"N": 5})
        expect = interpret_program(p, initial=init)
        ex = OOCExecutor(
            p, params=SMALL, real=True, tiling=tiling,
            memory_budget=30, initial=init,
        )
        ex.run()
        for name in ("U", "V", "W"):
            np.testing.assert_allclose(ex.array_data(name), expect[name])

    @pytest.mark.parametrize(
        "layouts",
        [
            {},
            {"U": row_major(2), "V": col_major(2), "W": row_major(2)},
            {"U": col_major(2), "V": col_major(2), "W": col_major(2)},
        ],
        ids=["default", "paper-optimal", "all-col"],
    )
    def test_layout_independence(self, layouts):
        p = motivating_program(5)
        init = initial_arrays(p, {"N": 5})
        expect = interpret_program(p, initial=init)
        ex = OOCExecutor(
            p, layouts, params=SMALL, real=True, memory_budget=40, initial=init
        )
        ex.run()
        for name in ("U", "V", "W"):
            np.testing.assert_allclose(ex.array_data(name), expect[name])

    def test_matmul_with_reduction_and_weight(self):
        p = matmul_program(4, weight=2)
        init = initial_arrays(p, {"N": 4})
        expect = interpret_program(p, initial=init)
        ex = OOCExecutor(
            p, params=SMALL, real=True, memory_budget=50, initial=init
        )
        ex.run()
        np.testing.assert_allclose(ex.array_data("C"), expect["C"])

    def test_interleaved_storage_same_results(self):
        p = motivating_program(4)
        init = initial_arrays(p, {"N": 4})
        expect = interpret_program(p, initial=init)
        spec = {
            "U": InterleavedStoreSpec("g", (5, 5)),
            "V": InterleavedStoreSpec("g", (5, 5)),
            "W": LinearStoreSpec(row_major(2)),
        }
        ex = OOCExecutor(
            p, params=SMALL, real=True, memory_budget=80,
            storage_spec=spec, initial=init,
        )
        ex.run()
        for name in ("U", "V", "W"):
            np.testing.assert_allclose(ex.array_data(name), expect[name])

    def test_triangular_nest(self):
        b = ProgramBuilder("tri", params=("N",), default_binding={"N": 6})
        N = b.param("N")
        A = b.array("A", (N, N))
        B2 = b.array("B", (N, N))
        with b.nest("t") as nb:
            i = nb.loop("i", 1, N)
            j = nb.loop("j", i, N)
            nb.assign(A[i, j], B2[j, i] + 1.0)
        p = b.build()
        init = initial_arrays(p, {"N": 6})
        expect = interpret_program(p, initial=init)
        ex = OOCExecutor(p, params=SMALL, real=True, memory_budget=30, initial=init)
        ex.run()
        np.testing.assert_allclose(ex.array_data("A"), expect["A"])

    def test_guarded_statements(self):
        from repro.ir import Condition, IndexVar

        b = ProgramBuilder("g", params=("N",), default_binding={"N": 5})
        N = b.param("N")
        X = b.array("X", (N,))
        Y = b.array("Y", (N, N))
        with b.nest("n") as nb:
            i = nb.loop("i", 1, N)
            j = nb.loop("j", 1, N)
            nb.assign(X[i], 0.0, guards=[Condition.eq(IndexVar("j"), 1)])
            nb.assign(Y[i, j], X[i] + 1.0)
        p = b.build()
        init = initial_arrays(p, {"N": 5})
        expect = interpret_program(p, initial=init)
        ex = OOCExecutor(p, params=SMALL, real=True, memory_budget=30, initial=init)
        ex.run()
        np.testing.assert_allclose(ex.array_data("Y"), expect["Y"])
        np.testing.assert_allclose(ex.array_data("X"), expect["X"])


class TestOOCExecutorAccounting:
    def test_simulate_matches_real_io_counts(self):
        p = motivating_program(6)
        kw = dict(params=SMALL, memory_budget=40)
        real = OOCExecutor(p, real=True, **kw).run()
        sim = OOCExecutor(p, real=False, **kw).run()
        assert real.stats.read_calls == sim.stats.read_calls
        assert real.stats.write_calls == sim.stats.write_calls
        assert real.stats.elements_moved == sim.stats.elements_moved
        assert real.stats.io_time_s == pytest.approx(sim.stats.io_time_s)

    def test_memory_budget_respected(self):
        p = motivating_program(8)
        ex = OOCExecutor(p, params=SMALL, real=False, memory_budget=40)
        res = ex.run()
        assert res.peak_memory <= 40

    def test_weight_scales_stats(self):
        p1 = matmul_program(6, weight=1)
        p3 = matmul_program(6, weight=3)
        kw = dict(params=SMALL, real=False, memory_budget=60)
        s1 = OOCExecutor(p1, **kw).run().stats
        s3 = OOCExecutor(p3, **kw).run().stats
        assert s3.read_calls == 3 * s1.read_calls
        assert s3.io_time_s == pytest.approx(3 * s1.io_time_s)

    def test_combined_optimization_fewer_calls(self):
        """The paper's worked optimization of the motivating fragment —
        U row-major, V column-major, W row-major, nest2 interchanged —
        needs far fewer I/O calls than the unoptimized all-column-major
        program."""
        from repro.linalg import IMat
        from repro.transforms import apply_loop_transform

        p = motivating_program(16)
        interchanged = apply_loop_transform(
            p.nests[1], IMat([[0, 1], [1, 0]])
        )
        optimized = p.with_nests([p.nests[0], interchanged])
        kw = dict(params=SMALL, real=False, memory_budget=80)
        good = OOCExecutor(
            optimized,
            {"U": row_major(2), "V": col_major(2), "W": row_major(2)},
            **kw,
        ).run()
        bad = OOCExecutor(
            p,
            {"U": col_major(2), "V": col_major(2), "W": col_major(2)},
            **kw,
        ).run()
        assert good.stats.calls < bad.stats.calls

    def test_combined_optimization_preserves_semantics(self):
        from repro.linalg import IMat
        from repro.transforms import apply_loop_transform

        p = motivating_program(5)
        init = initial_arrays(p, {"N": 5})
        expect = interpret_program(p, initial=init)
        interchanged = apply_loop_transform(p.nests[1], IMat([[0, 1], [1, 0]]))
        optimized = p.with_nests([p.nests[0], interchanged])
        ex = OOCExecutor(
            optimized,
            {"U": row_major(2), "V": col_major(2), "W": row_major(2)},
            params=SMALL, real=True, memory_budget=40, initial=init,
        )
        ex.run()
        for name in ("U", "V", "W"):
            np.testing.assert_allclose(ex.array_data(name), expect[name])

    def test_nest_runs_reported(self):
        p = motivating_program(6)
        res = OOCExecutor(p, params=SMALL, real=False, memory_budget=40).run()
        assert [r.nest_name for r in res.nest_runs] == ["nest1", "nest2"]
        assert all(r.tiles_executed > 0 for r in res.nest_runs)
        assert res.serial_time_s > 0

    def test_array_data_unavailable_in_simulate(self):
        p = motivating_program(4)
        ex = OOCExecutor(p, params=SMALL, real=False, memory_budget=40)
        with pytest.raises(RuntimeError):
            ex.array_data("U")

    def test_mixed_shape_interleaving_rejected(self):
        b = ProgramBuilder("t", params=("N",), default_binding={"N": 4})
        N = b.param("N")
        X = b.array("X", (N,))
        Y = b.array("Y", (N, N))
        with b.nest() as nb:
            i = nb.loop("i", 1, N)
            nb.assign(X[i], 1.0)
        with b.nest() as nb:
            i = nb.loop("i", 1, N)
            j = nb.loop("j", 1, N)
            nb.assign(Y[i, j], 1.0)
        p = b.build()
        with pytest.raises(ValueError):
            OOCExecutor(
                p,
                params=SMALL,
                storage_spec={
                    "X": InterleavedStoreSpec("g", (2,)),
                    "Y": InterleavedStoreSpec("g", (2, 2)),
                },
            )


class TestCodegen:
    def test_contains_tile_structure(self):
        p = motivating_program(6)
        text = generate_tiled_code(
            p, {"U": row_major(2), "V": col_major(2), "W": row_major(2)}
        )
        assert "passion_read_tiles" in text
        assert "passion_write_tiles" in text
        assert "do IT = " in text
        assert "file layout of V: linear layout g=column-major" in text

    def test_ooc_tiling_leaves_innermost_untiled(self):
        p = motivating_program(6)
        text = generate_tiled_code(p, {})
        # innermost j is not strip-mined: no JT loop
        assert "do JT" not in text
        assert "do IT" in text
