"""The vectorized innermost-strip execution path must agree exactly with
the scalar interpreter — and must refuse nests it cannot handle."""

import numpy as np
import pytest

from repro.engine import OOCExecutor, interpret_program
from repro.engine.interpreter import initial_arrays, innermost_vectorizable
from repro.ir import Condition, IndexVar, ProgramBuilder
from repro.runtime import MachineParams
from repro.workloads import build_workload, workload_names

SMALL = MachineParams(n_io_nodes=2, stripe_bytes=128, io_latency_s=0.001)


def program_of(body_fn, n=6, lo=2):
    b = ProgramBuilder("v", params=("N",), default_binding={"N": n})
    N = b.param("N")
    arrays = {}

    def arr(name, rank=2):
        if name not in arrays:
            arrays[name] = b.array(name, (N + 2,) * rank)
        return arrays[name]

    with b.nest("n") as nest:
        i = nest.loop("i", lo, N)
        j = nest.loop("j", lo, N)
        body_fn(nest, arr, i, j)
    return b.build()


class TestVectorizability:
    def test_copy_is_vectorizable(self):
        p = program_of(lambda n, a, i, j: n.assign(a("X")[i, j], a("Y")[j, i] + 1.0))
        assert innermost_vectorizable(p.nests[0])

    def test_innermost_recurrence_is_not(self):
        p = program_of(
            lambda n, a, i, j: n.assign(a("X")[i, j], a("X")[i, j - 1] + 1.0)
        )
        assert not innermost_vectorizable(p.nests[0])

    def test_outer_recurrence_is_vectorizable(self):
        p = program_of(
            lambda n, a, i, j: n.assign(a("X")[i, j], a("X")[i - 1, j] + 1.0)
        )
        assert innermost_vectorizable(p.nests[0])

    def test_temporal_lhs_is_not(self):
        # X(i, 1) written by every j: output dependence carried by j
        p = program_of(
            lambda n, a, i, j: n.assign(a("X")[i, 1], a("Y")[i, j] + 1.0)
        )
        assert not innermost_vectorizable(p.nests[0])

    def test_guards_disable(self):
        p = program_of(
            lambda n, a, i, j: n.assign(
                a("X")[i, j], 1.0, guards=[Condition.eq(IndexVar("j"), 2)]
            )
        )
        assert not innermost_vectorizable(p.nests[0])

    def test_matmul_reduction_not_vectorizable(self):
        p = build_workload("mat", 6)
        mm = p.nest("mat.mm")
        # C(i,j) += ... carried by innermost k
        assert not innermost_vectorizable(mm)


def _compare_paths(program, budget=3000):
    binding = program.binding()
    init = initial_arrays(program, binding)
    expected = interpret_program(program, initial=init)
    results = {}
    for vectorize in (False, True):
        ex = OOCExecutor(
            program, params=SMALL, real=True,
            memory_budget=budget, initial=init, vectorize=vectorize,
        )
        ex.run()
        results[vectorize] = {
            a.name: ex.array_data(a.name) for a in program.arrays
        }
    for a in program.arrays:
        np.testing.assert_allclose(results[True][a.name], expected[a.name])
        np.testing.assert_array_equal(
            results[True][a.name], results[False][a.name]
        )


class TestVectorizedEquivalence:
    def test_transpose_copy(self):
        _compare_paths(
            program_of(lambda n, a, i, j: n.assign(a("X")[i, j], a("Y")[j, i] * 2.0))
        )

    def test_outer_recurrence(self):
        _compare_paths(
            program_of(
                lambda n, a, i, j: n.assign(
                    a("X")[i, j], a("X")[i - 1, j + 1] + a("Y")[i, j]
                )
            )
        )

    def test_multi_statement(self):
        def body(n, a, i, j):
            n.assign(a("X")[i, j], a("Y")[j, i] + 1.0)
            n.assign(a("Z")[i, j], a("X")[i, j] * 0.5)

        _compare_paths(program_of(body))

    def test_intrinsics(self):
        from repro.ir.expr import Call

        def body(n, a, i, j):
            n.assign(a("X")[i, j], Call("sqrt", a("Y")[i, j] * 1.0))

        _compare_paths(program_of(body))

    @pytest.mark.parametrize("workload", workload_names())
    def test_workloads_both_paths_agree(self, workload):
        program = build_workload(workload, 5)
        _compare_paths(program, budget=4000)
