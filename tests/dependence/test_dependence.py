import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dependence import (
    DependenceEdge,
    Direction,
    analyze_nest,
    banerjee_independent,
    direction_of,
    gcd_independent,
    lex_positive,
    transform_is_legal,
)
from repro.ir import ProgramBuilder
from repro.linalg import IMat


def build_nest(body_fn, params=("N",), default=6, depth_vars=("i", "j")):
    b = ProgramBuilder("t", params=params, default_binding={"N": default})
    N = b.param("N")
    arrays = {}

    def arr(name, rank=2):
        if name not in arrays:
            arrays[name] = b.array(name, (N,) * rank)
        return arrays[name]

    with b.nest("n") as n:
        idx = [n.loop(v, 1, N) for v in depth_vars]
        body_fn(n, arr, idx)
    return b.build().nests[0]


class TestVectors:
    def test_direction_of(self):
        assert direction_of((1, 0, -2)) == (
            Direction.LT,
            Direction.EQ,
            Direction.GT,
        )

    def test_lex_positive(self):
        assert lex_positive((0, 0))
        assert lex_positive((0, 1))
        assert not lex_positive((0, -1))
        assert lex_positive((1, -5))

    def test_edge_validation(self):
        with pytest.raises(ValueError):
            DependenceEdge("A", 0, 0, "sideways", frozenset())

    def test_carried_at_level(self):
        e = DependenceEdge("A", 0, 0, "flow", frozenset({(0, 1), (1, 0)}))
        assert e.carried_at_level(0)
        assert e.carried_at_level(1)
        assert e.loop_carried


class TestGcdTest:
    def test_different_arrays_independent(self):
        n = build_nest(lambda nb, arr, ix: nb.assign(arr("A")[ix[0], ix[1]], arr("B")[ix[0], ix[1]]))
        refs = list(n.refs())
        (_, w, _), (_, r, _) = refs
        assert gcd_independent(w, r, n.loop_vars)

    def test_stride2_vs_odd_independent(self):
        # A(2i) vs A(2i+1): gcd 2 does not divide 1
        n = build_nest(
            lambda nb, arr, ix: nb.assign(
                arr("A")[2 * ix[0], ix[1]], arr("A")[2 * ix[0] + 1, ix[1]]
            )
        )
        (_, w, _), (_, r, _) = list(n.refs())
        assert gcd_independent(w, r, n.loop_vars)

    def test_same_ref_not_proven_independent(self):
        n = build_nest(
            lambda nb, arr, ix: nb.assign(
                arr("A")[ix[0], ix[1]], arr("A")[ix[0] - 1, ix[1]]
            )
        )
        (_, w, _), (_, r, _) = list(n.refs())
        assert not gcd_independent(w, r, n.loop_vars)

    def test_distinct_constant_subscripts(self):
        n = build_nest(
            lambda nb, arr, ix: nb.assign(arr("A")[1, ix[1]], arr("A")[2, ix[1]])
        )
        (_, w, _), (_, r, _) = list(n.refs())
        assert gcd_independent(w, r, n.loop_vars)

    def test_mismatched_param_coefficient_conservative(self):
        # A(i + N) vs A(i): N unknown => may alias; must not claim independence
        n = build_nest(
            lambda nb, arr, ix: nb.assign(
                arr("A")[ix[0] + IndexN(), ix[1]], arr("A")[ix[0], ix[1]]
            )
        )


def IndexN():
    from repro.ir import IndexVar

    return IndexVar("N")


class TestBanerjee:
    def test_disjoint_halves_independent(self):
        # write A(i), read A(i + N): ranges [1,N] vs [N+1, 2N] never meet
        b = ProgramBuilder("t", params=("N",), default_binding={"N": 6})
        N = b.param("N")
        A = b.array("A", (3 * N,))
        with b.nest("n") as nb:
            i = nb.loop("i", 1, N)
            nb.assign(A[i], A[i + N])
        nest = b.build().nests[0]
        (_, w, _), (_, r, _) = list(nest.refs())
        assert banerjee_independent(w, r, nest, {"N": 6})

    def test_overlapping_not_independent(self):
        nest = build_nest(
            lambda nb, arr, ix: nb.assign(
                arr("A")[ix[0], ix[1]], arr("A")[ix[0] - 1, ix[1]]
            )
        )
        (_, w, _), (_, r, _) = list(nest.refs())
        assert not banerjee_independent(w, r, nest, {"N": 6})

    def test_triangular_nest_handled(self):
        b = ProgramBuilder("t", params=("N",), default_binding={"N": 6})
        N = b.param("N")
        A = b.array("A", (N, N))
        with b.nest("n") as nb:
            i = nb.loop("i", 1, N)
            j = nb.loop("j", i, N)
            nb.assign(A[i, j], A[i, j] + 1.0)
        nest = b.build().nests[0]
        (_, w, _), (_, r, _) = list(nest.refs())
        assert not banerjee_independent(w, r, nest, {"N": 6})


class TestAnalyzeNest:
    def test_no_deps_in_embarrassingly_parallel(self):
        nest = build_nest(
            lambda nb, arr, ix: nb.assign(arr("A")[ix[0], ix[1]], arr("B")[ix[0], ix[1]])
        )
        assert analyze_nest(nest) == []

    def test_uniform_flow_dependence(self):
        # A(i,j) = A(i-1,j): flow dep, distance (1, 0), exact
        nest = build_nest(
            lambda nb, arr, ix: nb.assign(
                arr("A")[ix[0], ix[1]], arr("A")[ix[0] - 1, ix[1]] + 1.0
            )
        )
        edges = analyze_nest(nest)
        flows = [e for e in edges if e.kind == "flow"]
        assert len(flows) == 1
        assert flows[0].distances == frozenset({(1, 0)})
        assert flows[0].exact

    def test_anti_dependence(self):
        # A(i,j) = A(i+1,j): read of i+1 happens before write at i+1 => anti, dist (1,0)
        nest = build_nest(
            lambda nb, arr, ix: nb.assign(
                arr("A")[ix[0], ix[1]], arr("A")[ix[0] + 1, ix[1]] + 1.0
            )
        )
        edges = analyze_nest(nest)
        assert {e.kind for e in edges} == {"anti"}
        assert edges[0].distances == frozenset({(1, 0)})

    def test_output_dependence(self):
        # A(i, 1) written by every j iteration: output dep carried by j
        nest = build_nest(
            lambda nb, arr, ix: nb.assign(arr("A")[ix[0], 1], arr("B")[ix[0], ix[1]])
        )
        outs = [e for e in edges_of_kind(nest, "output")]
        assert outs
        assert all(d[0] == 0 and d[1] > 0 for e in outs for d in e.distances)

    def test_transpose_non_uniform(self):
        # A(i,j) = A(j,i): non-uniform, symmetric distances (d, -d)
        nest = build_nest(
            lambda nb, arr, ix: nb.assign(
                arr("A")[ix[0], ix[1]], arr("A")[ix[1], ix[0]] + 1.0
            )
        )
        edges = analyze_nest(nest)
        assert edges
        for e in edges:
            assert not e.exact
            for d in e.distances:
                assert d[0] == -d[1]

    def test_statement_order_dependence(self):
        # S0 writes A(i,j); S1 reads A(i,j): loop-independent flow S0->S1
        def body(nb, arr, ix):
            nb.assign(arr("A")[ix[0], ix[1]], 1.0)
            nb.assign(arr("B")[ix[0], ix[1]], arr("A")[ix[0], ix[1]])

        nest = build_nest(body)
        flows = edges_of_kind(nest, "flow")
        assert any(
            e.src_stmt == 0 and e.dst_stmt == 1 and (0, 0) in e.distances
            for e in flows
        )

    def test_guard_limits_dependences(self):
        from repro.ir import Condition, IndexVar

        def body(nb, arr, ix):
            nb.assign(
                arr("A")[ix[0], 1],
                arr("A")[ix[0], 1] + 1.0,
                guards=[Condition.eq(IndexVar("j"), 1)],
            )

        nest = build_nest(body)
        edges = analyze_nest(nest)
        # only executes at j == 1, so no j-carried dependence
        for e in edges:
            for d in e.distances:
                assert d[1] == 0


def edges_of_kind(nest, kind):
    return [e for e in analyze_nest(nest) if e.kind == kind]


class TestLegality:
    def _stencil_edges(self):
        nest = build_nest(
            lambda nb, arr, ix: nb.assign(
                arr("A")[ix[0], ix[1]], arr("A")[ix[0] - 1, ix[1] + 1] + 1.0
            )
        )
        return analyze_nest(nest)

    def test_identity_always_legal(self):
        assert transform_is_legal(IMat.identity(2), self._stencil_edges())

    def test_interchange_illegal_for_skewed_stencil(self):
        # distance (1, -1): interchange maps it to (-1, 1) — illegal
        t = IMat([[0, 1], [1, 0]])
        assert not transform_is_legal(t, self._stencil_edges())

    def test_interchange_legal_for_plain_stencil(self):
        nest = build_nest(
            lambda nb, arr, ix: nb.assign(
                arr("A")[ix[0], ix[1]], arr("A")[ix[0] - 1, ix[1]] + 1.0
            )
        )
        edges = analyze_nest(nest)
        assert transform_is_legal(IMat([[0, 1], [1, 0]]), edges)

    def test_reversal_illegal_when_carried(self):
        nest = build_nest(
            lambda nb, arr, ix: nb.assign(
                arr("A")[ix[0], ix[1]], arr("A")[ix[0] - 1, ix[1]] + 1.0
            )
        )
        edges = analyze_nest(nest)
        t = IMat([[-1, 0], [0, 1]])
        assert not transform_is_legal(t, edges)

    def test_skew_legalizes_interchange(self):
        # distance (1,-1) under T = [[1,0],[1,1]] becomes (1, 0): legal
        t = IMat([[1, 0], [1, 1]])
        assert transform_is_legal(t, self._stencil_edges())

    def test_direction_pattern_conservatism(self):
        # non-exact edge with pattern (<, >): T = identity is fine,
        # but a transform whose first row could zero it out is rejected
        e = DependenceEdge("A", 0, 0, "flow", frozenset({(1, -1), (2, -2)}))
        assert transform_is_legal(IMat.identity(2), e.distances and [e])
        t = IMat([[1, 1], [0, 1]])  # first row of T·d = d1 + d2 = 0 possible
        assert not transform_is_legal(t, [e])

    @settings(max_examples=40, deadline=None)
    @given(
        st.sampled_from(
            [
                [[1, 0], [0, 1]],
                [[0, 1], [1, 0]],
                [[1, 1], [0, 1]],
                [[1, 0], [1, 1]],
                [[1, -1], [0, 1]],
                [[-1, 0], [0, 1]],
            ]
        )
    )
    def test_legal_transform_preserves_execution_order_property(self, rows):
        """If transform_is_legal says yes, every stored distance maps to a
        lexicographically positive vector."""
        t = IMat(rows)
        edges = self._stencil_edges()
        if transform_is_legal(t, edges):
            for e in edges:
                for d in e.distances:
                    assert lex_positive(t.matvec(d))
