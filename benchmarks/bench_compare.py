"""The reproduction scorecard as a regression gate.

Direction-of-effect agreement with the paper's Table 2 and the exact
match of the average version ordering are the repository's headline
claims — this bench computes and pins them.
"""

from conftest import run_once

from repro.experiments.compare import table2_scorecard, table3_scorecard


def test_scorecard(benchmark, settings, json_out):
    text, summary = run_once(benchmark, table2_scorecard, settings)
    print("\n" + text)
    json_out("scorecard.table2", summary, n=settings.n)
    # the global conclusion of the paper, reproduced exactly
    assert summary["average_order_matches"], summary
    # per-cell direction agreement: at least 70% (documented deviations
    # in EXPERIMENTS.md account for the rest)
    assert summary["agreement"] >= 0.70, summary["disagreements"]
    # none of the disagreements may be of the damning kind: the paper
    # says a version IMPROVES but we measure it HURTING — that would
    # contradict the paper's conclusions.  (The reverse — paper hurts,
    # we improve — is the documented systematic effect of our more
    # pessimistic col baseline; see EXPERIMENTS.md.)
    for d in summary["disagreements"]:
        assert "paper improves" not in d or "measured hurts" not in d, d


def test_table3_scalability_scorecard(benchmark, settings, json_out):
    text, summary = run_once(benchmark, table3_scorecard, settings)
    print("\n" + text)
    json_out(
        "scorecard.table3", summary,
        n=settings.n, node_grid=settings.table3_nodes,
    )
    # the paper's scalability conclusion holds for at least 8 of 10 codes
    assert summary["agreement"] >= 0.8, text
