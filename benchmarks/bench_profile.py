"""Hotspot profiler + deterministic work counters (repro.obs.profile).

Three findings, all asserted:

- **The pricing stack is where the time goes.**  On the instrumented
  table sweep the hotspot table attributes at least half of the
  recorded self time to the pricing sites (``pricing.plan_runs``, the
  ``IOContext`` record paths, the event-sim loop) — the measurement the
  ROADMAP's batched-pricing-kernel item starts from.
- **Work counters are bit-identical across repeat runs**, on the
  direct-executor, independent-parallel and two-phase-collective paths
  — integers end to end, so the regression gate holds them to exact
  equality (wall time stays excluded from the gate).
- **Pricing work is conserved across layout strategies** where it must
  be: the interpreted element-loop iteration count is a property of
  the loop nests, not the layout, so every pure data-layout strategy
  agrees on it exactly — and on the rectangular-nest workloads (mxm,
  adi) all six strategies do.  Loop-transforming strategies may
  legitimately re-estimate non-rectangular nests (l-opt interchanges
  syr2k's triangular nest), which is why the conservation claim is
  scoped to strategies that move data, not loops.

Only the deterministic integer counters enter the regression-gated
``--json`` payload; the wall-derived hotspot shares are asserted here
and recorded (outside ``--smoke``) in ``BENCH_profile.json`` at the
repo root.
"""

import json
import pathlib
from dataclasses import replace

from conftest import run_once

from repro.engine import OOCExecutor
from repro.experiments.harness import _scaled_params
from repro.obs import ProfileConfig
from repro.optimizer.strategies import VERSION_NAMES, build_version
from repro.parallel import CollectiveConfig, run_version_parallel
from repro.workloads import build_workload

SWEEP_N = 32
SMOKE_N = 16
N_NODES = 4

ARTIFACT = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_profile.json"
)

#: sections accumulated across this module's tests, written as one
#: artifact by each full-size test as it lands
_SECTIONS: dict = {}


def _params(n):
    return replace(_scaled_params(n), n_io_nodes=4)


def _flat_work(work):
    """A run's work delta as a flat, int-only dict (the gated shape)."""
    out = {
        k: int(v) for k, v in work.items() if k != "python_loop_iters"
    }
    for phase, n in work["python_loop_iters"].items():
        out[f"python_loop_iters.{phase}"] = int(n)
    return out


def test_pricing_stack_is_the_hotspot(benchmark, smoke, json_out):
    """On the profiled table sweep the pricing sites hold >= 50% of the
    instrumented self time, on every workload x version cell."""
    n = SMOKE_N if smoke else SWEEP_N
    workloads = ("mxm", "adi") if smoke else ("mxm", "adi", "syr2k")
    versions = ("col", "c-opt") if smoke else ("col", "row", "c-opt")

    def sweep():
        rows = {}
        for wl in workloads:
            prog = build_workload(wl, n)
            for ver in versions:
                run = run_version_parallel(
                    build_version(ver, prog), N_NODES, params=_params(n),
                    profile=ProfileConfig(),
                )
                table = run.profile.hotspots
                rows[f"{wl}/{ver}"] = {
                    "pricing_share": table.pricing_share(),
                    "total_self_s": table.total_self_s,
                    "top_site": table.sites[0].name if table.sites else None,
                    "work": _flat_work(run.profile.work),
                }
        return rows

    rows = run_once(benchmark, sweep)
    # gate only the deterministic integers; shares are wall-derived
    json_out(
        "profile_work_by_cell",
        {cell: r["work"] for cell, r in rows.items()},
        n=n, nodes=N_NODES, workloads=workloads, versions=versions,
    )
    print()
    for cell, r in rows.items():
        print(
            f"  {cell:12s} share={r['pricing_share']:.1%} "
            f"top={r['top_site']} "
            f"priced_runs={r['work']['priced_runs']}"
        )
    for cell, r in rows.items():
        assert r["pricing_share"] >= 0.5, (
            f"{cell}: pricing stack held only {r['pricing_share']:.1%} "
            "of instrumented self time"
        )
        assert r["top_site"] is not None
    if not smoke:
        _SECTIONS["hotspots"] = {"n": n, "nodes": N_NODES, "rows": rows}
        _write_artifact()


def test_work_counters_repeat_bit_identical(benchmark, smoke, json_out):
    """The same configuration profiled twice yields byte-equal work
    deltas on all three execution paths — the property that lets the
    gate exact-match them."""
    n = SMOKE_N if smoke else SWEEP_N
    workloads = ("adi",) if smoke else ("adi", "mxm")

    def once(wl):
        prog = build_workload(wl, n)
        cfg = build_version("c-opt", prog)
        direct = OOCExecutor(
            cfg.program, cfg.layouts, params=_params(n), tiling=cfg.tiling,
            storage_spec=cfg.storage_spec, profile=ProfileConfig(),
        ).run()
        indep = run_version_parallel(
            cfg, N_NODES, params=_params(n), profile=ProfileConfig(),
        )
        two_phase = run_version_parallel(
            cfg, N_NODES, params=_params(n),
            collective=CollectiveConfig(mode="always", simulator="event"),
            profile=ProfileConfig(),
        )
        return {
            "direct": _flat_work(direct.profile.work),
            "independent": _flat_work(indep.profile.work),
            "two_phase": _flat_work(two_phase.profile.work),
        }

    def sweep():
        return {wl: (once(wl), once(wl)) for wl in workloads}

    pairs = run_once(benchmark, sweep)
    rows = {}
    print()
    for wl, (first, second) in pairs.items():
        assert first == second, (
            f"{wl}: work counters drifted between repeat runs — "
            f"{first} != {second}"
        )
        rows[wl] = first
        print(
            f"  {wl:6s} repeat-identical across "
            f"{sorted(first)} paths: direct/independent/two_phase"
        )
        assert first["two_phase"]["sim_events"] > 0
    json_out(
        "profile_work_repeatable", rows,
        n=n, nodes=N_NODES, workloads=workloads,
    )
    if not smoke:
        _SECTIONS["repeatability"] = {"n": n, "rows": rows}
        _write_artifact()


#: strategies that only change data layout (file layouts, storage
#: order) — never the loop structure, so element-loop work is conserved
LAYOUT_ONLY = ("col", "row", "d-opt", "h-opt")

#: rectangular-nest workloads where even the loop-transforming
#: strategies preserve the iteration estimate exactly
RECTANGULAR = ("mxm", "adi")


def test_element_iters_invariant_across_layouts(benchmark, smoke, json_out):
    """The interpreted element-loop iteration count is conserved across
    every data-layout strategy (layouts move data, not compute), and
    across all six strategies on rectangular-nest workloads."""
    n = SMOKE_N if smoke else SWEEP_N
    workloads = ("mxm", "adi") if smoke else ("mxm", "adi", "syr2k")

    def sweep():
        rows = {}
        for wl in workloads:
            prog = build_workload(wl, n)
            per_version = {}
            for ver in VERSION_NAMES:
                run = run_version_parallel(
                    build_version(ver, prog), N_NODES, params=_params(n),
                    profile=ProfileConfig(),
                )
                w = run.profile.work
                per_version[ver] = int(
                    w["python_loop_iters"].get("element", 0)
                )
            rows[wl] = per_version
        return rows

    rows = run_once(benchmark, sweep)
    json_out(
        "profile_element_iters", rows,
        n=n, nodes=N_NODES, workloads=workloads, versions=VERSION_NAMES,
    )
    print()
    for wl, per_version in rows.items():
        layout_iters = {per_version[v] for v in LAYOUT_ONLY}
        print(
            f"  {wl:6s} element iters: "
            + " ".join(f"{v}={n_it}" for v, n_it in per_version.items())
        )
        assert len(layout_iters) == 1, (
            f"{wl}: element-loop work not conserved across data-layout "
            f"strategies: {per_version}"
        )
        assert layout_iters.pop() > 0
        if wl in RECTANGULAR:
            all_iters = set(per_version.values())
            assert len(all_iters) == 1, (
                f"{wl}: rectangular nests must conserve element work "
                f"under every strategy: {per_version}"
            )
    if not smoke:
        _SECTIONS["element_iters"] = {"n": n, "rows": rows}
        _write_artifact()


def _write_artifact():
    payload = {"sweep_n": SWEEP_N, **_SECTIONS}
    ARTIFACT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"  wrote {ARTIFACT.name}")
