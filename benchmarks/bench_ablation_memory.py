"""Ablation: memory-budget sensitivity (the paper fixes 1/128 of the
data; here the fraction sweeps 1/32 .. 1/512).

The optimized version's advantage persists across budgets; everything
degrades as memory shrinks, the unoptimized version fastest.
"""

from dataclasses import replace

import pytest
from conftest import run_once

from repro.optimizer import build_version
from repro.parallel import run_version_parallel
from repro.workloads import build_workload


@pytest.mark.parametrize("workload", ["trans", "gfunp"])
def test_memory_sweep(benchmark, settings, workload, json_out):
    program = build_workload(workload, settings.n)

    def sweep():
        out = {}
        for fraction in (8, 16, 32, 64):
            params = replace(settings.params, memory_fraction=fraction)
            row = {}
            for version in ("col", "c-opt"):
                cfg = build_version(version, program, params=params, n_nodes=1)
                row[version] = run_version_parallel(
                    cfg, 1, params=params
                ).time_s
            out[fraction] = row
        return out

    results = run_once(benchmark, sweep)
    json_out(f"ablation_memory.{workload}", {
        fraction: row for fraction, row in results.items()
    }, n=settings.n, fractions=(8, 16, 32, 64))
    print()
    for fraction, row in results.items():
        ratio = row["col"] / row["c-opt"]
        print(
            f"  memory=data/{fraction}: col {row['col']:.2f}s, "
            f"c-opt {row['c-opt']:.2f}s ({ratio:.1f}x)"
        )
        assert row["c-opt"] <= row["col"] * 1.01
