"""Multi-tenant serving sweep: tenant count x fairness policy, plus the
shared-cache repeat-workload scenario.

Two findings, both asserted:

- **Weighted-fair queueing defeats head-of-line blocking.**  One tenant
  bursts several jobs at t=0 while every other tenant submits a single
  job just after.  FIFO serves the whole burst first, so the victims'
  queue delay grows with the burst; WFQ charges the burster's virtual
  time after its first job and admits each victim next, cutting the
  worst victim's max queue delay at every tenant count.
- **The shared tile cache turns repeat jobs into hits.**  Re-running an
  identical workload under a cache budget serves later repetitions'
  clean read tiles from memory: hits and saved I/O time are positive,
  the makespan drops below the uncached serve, and the *accounting*
  (folded ``IOStats``) stays bit-identical — the cache prices served
  time only.

Everything is seeded and bit-deterministic (the sweep asserts equal
schedule signatures across two runs), so the ``--json`` envelope is
regression-gated like every other benchmark; outside ``--smoke`` the
sweep also writes ``BENCH_serve.json`` at the repo root.
"""

import json
import pathlib

from conftest import run_once

from repro.serve import (
    ClusterProfile,
    JobSpec,
    ServePolicy,
    TenantConfig,
    WorkloadScript,
    serve_script,
)

SWEEP_N = 24
SMOKE_N = 16

WORKLOAD = "trans"
SEED = 7

#: jobs the bursting tenant t0 floods in at t=0
BURST_JOBS = 4
SMOKE_BURST_JOBS = 3

TENANT_GRID = (2, 3, 4)
SMOKE_TENANT_GRID = (3,)

POLICY_GRID = ("fifo", "wfq")

CACHE_REPEATS = 4
CACHE_BUDGET = 8192

ARTIFACT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_serve.json"

#: sections accumulated across this module's tests, written as one
#: artifact by whichever full-size test finishes last
_SECTIONS: dict = {}


def burst_scenario(n_tenants, fairness, *, n, burst):
    """Tenant t0 bursts ``burst`` jobs at t=0; every other tenant
    submits one job at t=0.001, onto a single compute node."""
    profile = ClusterProfile(
        n_compute_nodes=1,
        tenants=tuple(TenantConfig(f"t{i}") for i in range(n_tenants)),
    )
    jobs = [JobSpec("t0", WORKLOAD, n=n) for _ in range(burst)]
    jobs += [
        JobSpec(f"t{i}", WORKLOAD, n=n, arrival_s=0.001)
        for i in range(1, n_tenants)
    ]
    script = WorkloadScript(seed=SEED, jobs=tuple(jobs))
    return profile, script, ServePolicy(fairness=fairness)


def _victim_max_delay(result):
    """Worst max queue delay over the non-bursting tenants."""
    return max(
        t.max_queue_delay_s
        for name, t in result.tenants.items()
        if name != "t0"
    )


def _row(result):
    s = result.total_stats
    return {
        "makespan_s": result.makespan_s,
        "victim_max_delay_s": _victim_max_delay(result),
        "waited_requests": result.waited_requests,
        "wait_time_s": result.wait_time_s,
        "calls": s.calls,
        "tenants": {
            name: {
                "completed": t.completed,
                "queue_delay_s": t.queue_delay_s,
                "max_queue_delay_s": t.max_queue_delay_s,
            }
            for name, t in sorted(result.tenants.items())
        },
    }


def test_serve_fairness_sweep(benchmark, smoke, json_out):
    n = SMOKE_N if smoke else SWEEP_N
    burst = SMOKE_BURST_JOBS if smoke else BURST_JOBS
    tenant_grid = SMOKE_TENANT_GRID if smoke else TENANT_GRID

    def sweep():
        rows = {}
        for n_tenants in tenant_grid:
            for fairness in POLICY_GRID:
                result = serve_script(
                    *burst_scenario(n_tenants, fairness, n=n, burst=burst)
                )
                rows[(n_tenants, fairness)] = _row(result)
        # determinism: the largest WFQ config replayed twice must yield
        # an identical schedule signature
        big = tenant_grid[-1]
        r1 = serve_script(*burst_scenario(big, "wfq", n=n, burst=burst))
        r2 = serve_script(*burst_scenario(big, "wfq", n=n, burst=burst))
        assert r1.signature() == r2.signature(), "serve is not deterministic"
        return rows

    rows = run_once(benchmark, sweep)
    json_out(
        "serve_fairness_sweep",
        {"rows": {f"{t}x{p}": r for (t, p), r in sorted(rows.items())}},
        n=n, workload=WORKLOAD, seed=SEED, burst_jobs=burst,
        tenant_grid=tenant_grid, policies=POLICY_GRID,
    )

    print()
    print("  tenants policy | makespan  victim max delay   waited")
    for (n_tenants, fairness), r in sorted(rows.items()):
        print(
            f"  {n_tenants:7d} {fairness:6s} | {r['makespan_s']:8.3f}"
            f" {r['victim_max_delay_s']:17.3f} {r['waited_requests']:8d}"
        )

    for n_tenants in tenant_grid:
        fifo = rows[(n_tenants, "fifo")]
        wfq = rows[(n_tenants, "wfq")]
        # every job completes under both policies
        for r in (fifo, wfq):
            assert all(
                t["completed"] >= 1 for t in r["tenants"].values()
            ), f"a tenant finished no jobs ({n_tenants} tenants): {r}"
        # WFQ must cut the worst victim's max queue delay vs FIFO's
        # head-of-line blocking — the point of the fairness policy
        assert wfq["victim_max_delay_s"] < fifo["victim_max_delay_s"], (
            f"WFQ did not beat FIFO head-of-line blocking at "
            f"{n_tenants} tenants: wfq={wfq['victim_max_delay_s']:.3f}s "
            f"fifo={fifo['victim_max_delay_s']:.3f}s"
        )
        # identical work either way: same folded call count
        assert wfq["calls"] == fifo["calls"]

    if not smoke:
        _SECTIONS["fairness_sweep"] = {
            "n": n, "burst_jobs": burst,
            "rows": [
                {"tenants": t, "policy": p, **r}
                for (t, p), r in sorted(rows.items())
            ],
        }
        _write_artifact()


def cache_scenario(budget, *, n):
    """One tenant re-running the identical workload ``CACHE_REPEATS``
    times back to back on one node."""
    profile = ClusterProfile(
        n_compute_nodes=1,
        tenants=(
            TenantConfig("solo", cache_quota_elements=budget // 2),
        ) if budget else (TenantConfig("solo"),),
        cache_budget_elements=budget,
    )
    script = WorkloadScript(
        seed=SEED,
        jobs=tuple(
            JobSpec("solo", WORKLOAD, n=n) for _ in range(CACHE_REPEATS)
        ),
    )
    return profile, script, ServePolicy()


def test_serve_shared_cache(benchmark, smoke, json_out):
    n = SMOKE_N if smoke else SWEEP_N

    def measure():
        cold = serve_script(*cache_scenario(0, n=n))
        warm = serve_script(*cache_scenario(CACHE_BUDGET, n=n))
        return cold, warm

    cold, warm = run_once(benchmark, measure)
    cache = warm.cache.summary_dict()
    payload = {
        "uncached": {"makespan_s": cold.makespan_s},
        "cached": {
            "makespan_s": warm.makespan_s,
            "hits": cache["hits"],
            "misses": cache["misses"],
            "evictions": cache["evictions"],
            "saved_io_s": cache["saved_io_s"],
        },
        "speedup_x": cold.makespan_s / warm.makespan_s,
    }
    json_out(
        "serve_shared_cache", payload,
        n=n, workload=WORKLOAD, seed=SEED,
        repeats=CACHE_REPEATS, cache_budget=CACHE_BUDGET,
    )

    print()
    print(f"  uncached makespan: {cold.makespan_s:8.3f}s")
    print(
        f"  cached   makespan: {warm.makespan_s:8.3f}s"
        f"  ({cache['hits']} hits, {cache['saved_io_s']:.3f}s I/O saved,"
        f" {payload['speedup_x']:.2f}x)"
    )

    assert cache["hits"] > 0, "repeat jobs produced no cache hits"
    assert cache["saved_io_s"] > 0
    assert warm.makespan_s < cold.makespan_s, (
        f"shared cache did not shorten the serve: "
        f"{warm.makespan_s:.3f}s vs {cold.makespan_s:.3f}s"
    )
    # the cache prices served time only — accounting is untouched
    assert warm.total_stats == cold.total_stats, (
        "cached serve changed the folded IOStats accounting"
    )

    if not smoke:
        _SECTIONS["shared_cache"] = {"n": n, **payload}
        _write_artifact()


def _write_artifact():
    payload = {
        "workload": WORKLOAD,
        "seed": SEED,
        "cache_budget": CACHE_BUDGET,
        "cache_repeats": CACHE_REPEATS,
        **_SECTIONS,
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"  wrote {ARTIFACT.name}")
