"""Ablation: the tile cache + asynchronous prefetch subsystem
(:mod:`repro.cache`) — policy x budget x prefetch.

The comparison axis is PASSION-style *extra buffer memory*: the
baseline plans tiles against budget ``M`` with no cache; cached runs
keep the identical tile plan (plan budget ``M``) and add ``C`` elements
of cache on top (``memory_budget=M+C``, ``budget_elements=C``).  That
isolates what residency buys: every I/O-call and volume delta comes
from tiles (or parts of tiles — stencil halos, growing bounding-box
hulls) served from memory instead of the file, not from a different
tile size.

The grid records the reduction in read calls and read volume per
workload, and the double-buffering model's overlapped-vs-exposed split
when prefetch is on.  Not every point wins: syr2k's hull regions grow
monotonically, so depth-1 prefetch of large hulls evicts
still-useful tiles under tight budgets — the grid reports that
honestly rather than hiding it.
"""

import pytest
from conftest import run_once

from repro.cache import CacheConfig
from repro.engine import OOCExecutor
from repro.experiments.harness import _scaled_params
from repro.optimizer import optimize_program
from repro.workloads import WORKLOADS, build_workload

#: extent for the cache ablation (weight repetitions are *executed*
#: with a live cache, so this is deliberately below the harness N)
CACHE_N = 64
#: extent under ``--smoke`` (CI: exercise every code path, tiny cost)
SMOKE_N = 32

WORKLOAD_GRID = ("adi", "mxm", "syr2k")
POLICY_GRID = ("lru", "lfu", "cost")
#: cache sizes as multiples of the plan budget M
BUDGET_GRID = (1, 2)


def _run(decision, params, memory_budget=None, cache=None):
    ex = OOCExecutor(
        decision.program,
        decision.layout_objects(),
        params=params,
        real=False,
        memory_budget=memory_budget,
        cache=cache,
    )
    return ex, ex.run()


def test_cache_disabled_is_bit_identical(benchmark, smoke, json_out):
    """``CacheConfig(enabled=False)`` must not perturb a single counter
    of any seed workload — the subsystem is strictly opt-in."""
    n = SMOKE_N if smoke else CACHE_N
    params = _scaled_params(n)

    def sweep():
        out = {}
        for workload in sorted(WORKLOADS):
            decision = optimize_program(build_workload(workload, n))
            _, off = _run(decision, params)
            _, disabled = _run(
                decision, params, cache=CacheConfig(enabled=False)
            )
            out[workload] = (off.stats, disabled.stats)
        return out

    results = run_once(benchmark, sweep)
    print()
    for workload, (off, disabled) in results.items():
        print(f"  {workload:8s} {off}")
        assert off == disabled, f"{workload}: disabled cache changed stats"
        assert disabled.cache is None
    json_out("cache_disabled_identical", {
        workload: off.to_dict() for workload, (off, _) in results.items()
    }, n=n)


def test_cache_ablation(benchmark, smoke, json_out):
    """Policy x budget x prefetch grid on three workloads."""
    n = SMOKE_N if smoke else CACHE_N
    params = _scaled_params(n)

    def sweep():
        out = {}
        for workload in WORKLOAD_GRID:
            decision = optimize_program(build_workload(workload, n))
            ex, off = _run(decision, params)
            M = ex.memory_budget
            rows = {}
            for policy in POLICY_GRID:
                for mult in BUDGET_GRID:
                    for prefetch in (False, True):
                        cfg = CacheConfig(
                            policy=policy,
                            budget_elements=mult * M,
                            prefetch=prefetch,
                        )
                        _, res = _run(
                            decision, params,
                            memory_budget=M + mult * M, cache=cfg,
                        )
                        key = (policy, mult, prefetch)
                        rows[key] = res
            out[workload] = (off, rows)
        return out

    results = run_once(benchmark, sweep)
    print()
    for workload, (off, rows) in results.items():
        print(
            f"  {workload}: off read_calls={off.stats.read_calls} "
            f"read_elements={off.stats.elements_read}"
        )
        for (policy, mult, prefetch), res in sorted(rows.items()):
            s, m = res.stats, res.cache_metrics
            dr = 100.0 * (off.stats.read_calls - s.read_calls) / off.stats.read_calls
            de = 100.0 * (off.stats.elements_read - s.elements_read) / off.stats.elements_read
            tag = f"{policy}+pf" if prefetch else policy
            line = (
                f"    C={mult}M {tag:8s} read_calls={s.read_calls:6d} "
                f"({dr:+5.1f}%) read_elements={s.elements_read:8d} ({de:+5.1f}%) "
                f"hit={m.hits}/{m.accesses} partial={m.partial_hits}"
            )
            if prefetch:
                line += (
                    f" overlap={m.overlapped_io_s:.3f}s "
                    f"exposed={m.exposed_prefetch_io_s:.3f}s"
                )
            print(line)

    # grid points keyed by their native (policy, mult, prefetch) tuples;
    # the shared sanitizer encodes them stably and reversibly
    json_out("cache_ablation", {
        workload: {
            "off": off.stats.to_dict(),
            "grid": {
                key: {
                    "stats": res.stats.to_dict(),
                    "cache": res.cache_metrics.to_dict(),
                }
                for key, res in sorted(rows.items())
            },
        }
        for workload, (off, rows) in results.items()
    }, n=n, workloads=WORKLOAD_GRID, policies=POLICY_GRID,
       budgets=BUDGET_GRID)

    # acceptance: an LRU cache with prefetch measurably reduces both
    # read calls and read volume on at least two workloads
    winners = []
    for workload, (off, rows) in results.items():
        best = min(
            (rows[("lru", mult, True)] for mult in BUDGET_GRID),
            key=lambda r: r.stats.io_time_s,
        )
        if (
            best.stats.read_calls < off.stats.read_calls
            and best.stats.elements_read < off.stats.elements_read
        ):
            winners.append(workload)
    print(f"  lru+prefetch wins on: {winners}")
    # tiny smoke sizes leave less reuse to capture; the full size must
    # win on two workloads, smoke only needs to prove the paths work
    need = 1 if smoke else 2
    assert len(winners) >= need, (
        f"LRU+prefetch should reduce read calls and volume on >={need} "
        f"workloads, got {winners}"
    )


@pytest.mark.parametrize("workload", ["adi", "mxm"])
def test_cache_write_modes_account_identically_for_reads(
    benchmark, workload, smoke, json_out
):
    """Write-back coalesces rewrites while write-through pays every
    write immediately; the read side (hits, savings) must agree."""
    n = SMOKE_N if smoke else CACHE_N
    params = _scaled_params(n)
    decision = optimize_program(build_workload(workload, n))

    def sweep():
        ex, _ = _run(decision, params)
        M = ex.memory_budget
        out = {}
        for mode in ("write-back", "write-through"):
            cfg = CacheConfig(budget_elements=M, write_mode=mode)
            _, res = _run(decision, params, memory_budget=2 * M, cache=cfg)
            out[mode] = res
        return out

    results = run_once(benchmark, sweep)
    json_out(f"cache_write_modes.{workload}", {
        mode: res.stats.to_dict() for mode, res in results.items()
    }, n=n)
    wb, wt = results["write-back"], results["write-through"]
    print()
    for mode, res in results.items():
        print(f"  {mode:13s} {res.stats}")
    assert wb.stats.read_calls == wt.stats.read_calls
    assert wb.stats.elements_read == wt.stats.elements_read
    # coalescing can only help the write side
    assert wb.stats.write_calls <= wt.stats.write_calls
