"""Table 3: scalability of the versions over 16..128 compute nodes.

Per-code benchmarks for four representative codes (the full ten-code
table is `python -m repro.experiments table3`), asserting the paper's
scalability story: optimized versions scale further before the I/O
subsystem saturates.
"""

import pytest
from conftest import run_once

from repro.experiments.harness import run_table3_block


@pytest.mark.parametrize("workload", ["mat", "adi", "trans", "emit"])
def test_table3_block(benchmark, settings, workload, json_out):
    block = run_once(benchmark, run_table3_block, workload, settings)
    # node counts are native int keys: the shared sanitizer's stable key
    # encoding keeps them diffable (and decode_key recovers the ints)
    json_out(
        f"table3_block.{workload}",
        {v: dict(curve) for v, curve in block.items()},
        n=settings.n, node_grid=settings.table3_nodes,
    )
    for version, curve in block.items():
        print(f"\n{workload}.{version}: " + "  ".join(
            f"p={p}:{s:.1f}" for p, s in sorted(curve.items())
        ))
        # parallel execution always helps at 16 nodes
        assert curve[16] > 1.0, (workload, version, curve)

    # optimized versions scale at least as far as the unoptimized one
    best_opt = max(max(block[v].values()) for v in ("c-opt", "h-opt"))
    best_col = max(block["col"].values())
    assert best_opt >= best_col, block


def test_table3_emit_row_scales_worst(benchmark, settings):
    """The paper's emit block: the row version has by far the worst
    speedups (6.8 at 16 nodes vs 12.7 for everything else)."""
    block = run_once(benchmark, run_table3_block, "emit", settings)
    for p in settings.table3_nodes:
        assert block["row"][p] <= block["col"][p] + 0.5
