"""Collective two-phase I/O sweep: nodes x I/O nodes x layout
conformance on adi/mxm/trans.

Two findings, both asserted:

- On a **non-conforming layout** (`col` walked against the storage
  order) different nodes' short runs interleave in the file; two-phase
  aggregation merges them into a few large conforming-domain calls —
  an order-of-magnitude I/O-call reduction, and a time win whenever the
  saved latency exceeds the redistribution cost.
- On the **compile-time optimized layout** (`c-opt`) every node's
  accesses already conform; aggregation has nothing to merge and the
  redistribution phase is pure overhead, so `mode="auto"` keeps the run
  independent.  This is the paper's point: layout optimization at
  compile time can make runtime collectives unnecessary.

The sweep also cross-checks the two pricing models (closed-form
``makespan`` vs. the discrete-event simulator) and, outside ``--smoke``,
seeds ``BENCH_collective.json`` so future changes can diff against the
recorded trajectory.
"""

import json
import pathlib
from dataclasses import asdict, replace

from conftest import run_once

from repro.collective import CollectiveConfig
from repro.experiments.harness import _scaled_params
from repro.optimizer import build_version
from repro.parallel import run_version_parallel
from repro.workloads import build_workload

SWEEP_N = 48
SMOKE_N = 24

WORKLOAD_GRID = ("adi", "mxm", "trans")
VERSION_GRID = ("col", "c-opt")
NODE_GRID = (4, 8)
IO_NODE_GRID = (2, 4, 8)
SMOKE_NODE_GRID = (4,)
SMOKE_IO_NODE_GRID = (4,)

ARTIFACT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_collective.json"


def _sweep_grid(smoke):
    n = SMOKE_N if smoke else SWEEP_N
    nodes = SMOKE_NODE_GRID if smoke else NODE_GRID
    io_nodes = SMOKE_IO_NODE_GRID if smoke else IO_NODE_GRID
    return n, nodes, io_nodes


def _row(cfg, p, params):
    base = run_version_parallel(cfg, p, params=params)
    auto = run_version_parallel(
        cfg, p, params=params, collective=CollectiveConfig(mode="auto")
    )
    forced = run_version_parallel(
        cfg, p, params=params, collective=CollectiveConfig(mode="always")
    )
    closed = run_version_parallel(
        cfg, p, params=params,
        collective=CollectiveConfig(mode="auto", simulator="closed-form"),
    )
    return {
        "independent_calls": base.total_io_calls,
        "independent_time_s": base.time_s,
        "auto_calls": auto.total_io_calls,
        "auto_time_s": auto.time_s,
        "auto_collective_nests": auto.collective.n_collective_nests,
        "auto_total_nests": len(auto.collective.chosen),
        "forced_calls": forced.total_io_calls,
        "forced_time_s": forced.time_s,
        "redist_messages": forced.total_stats.redist_messages,
        "redist_time_s": forced.total_stats.redist_time_s,
        "closed_form_time_s": closed.time_s,
        "event_vs_closed_delta": (
            (auto.time_s - closed.time_s) / closed.time_s
            if closed.time_s > 0
            else 0.0
        ),
    }


def test_collective_sweep(benchmark, smoke, json_out):
    n, node_grid, io_node_grid = _sweep_grid(smoke)

    def sweep():
        rows = {}
        for workload in WORKLOAD_GRID:
            program = build_workload(workload, n)
            for version in VERSION_GRID:
                cfg = build_version(version, program)
                for nio in io_node_grid:
                    params = replace(_scaled_params(n), n_io_nodes=nio)
                    for p in node_grid:
                        rows[(workload, version, nio, p)] = _row(
                            cfg, p, params
                        )
        return rows

    rows = run_once(benchmark, sweep)
    # rows keyed by their native (workload, version, nio, p) tuples —
    # the sanitizer's stable key encoding makes each grid point an
    # addressable leaf in baseline diffs
    json_out(
        "collective_sweep",
        {"rows": {k: r for k, r in sorted(rows.items())}},
        n=n, workloads=WORKLOAD_GRID, versions=VERSION_GRID,
        node_grid=node_grid, io_node_grid=io_node_grid,
    )

    print()
    print(
        "  workload version nio  p | ind calls   time | auto calls"
        "   time coll | forced calls msgs"
    )
    for (w, v, nio, p), r in sorted(rows.items()):
        print(
            f"  {w:8s} {v:7s} {nio:3d} {p:2d} |"
            f" {r['independent_calls']:9d} {r['independent_time_s']:6.3f} |"
            f" {r['auto_calls']:10d} {r['auto_time_s']:6.3f}"
            f" {r['auto_collective_nests']:d}/{r['auto_total_nests']:d} |"
            f" {r['forced_calls']:12d} {r['redist_messages']:4d}"
        )

    # (1) >=2x I/O-call reduction from two-phase I/O on a non-conforming
    # layout; at full size the auto decision itself achieves it, at
    # smoke sizes there is too little I/O for auto to engage everywhere
    # so the forced mode carries the demonstration
    best_forced = max(
        r["independent_calls"] / r["forced_calls"]
        for (w, v, _, _), r in rows.items()
        if v == "col" and r["forced_calls"] > 0
    )
    best_auto = max(
        r["independent_calls"] / r["auto_calls"]
        for (w, v, _, _), r in rows.items()
        if v == "col" and r["auto_calls"] > 0
    )
    print(
        f"  best col-layout call reduction: forced {best_forced:.1f}x, "
        f"auto {best_auto:.1f}x"
    )
    assert best_forced >= 2.0, (
        "two-phase I/O should reduce I/O calls >=2x on a non-conforming "
        f"layout, got {best_forced:.2f}x"
    )
    if not smoke:
        assert best_auto >= 2.0, (
            "the auto decision should capture a >=2x call reduction at "
            f"full sweep size, got {best_auto:.2f}x"
        )

    # (2) the honest counterpoint: on the compile-time optimized layout
    # the auto decision keeps (at least some of) the run independent —
    # collectives are unnecessary once layouts conform
    copt_independent = [
        (w, nio, p)
        for (w, v, nio, p), r in rows.items()
        if v == "c-opt"
        and r["auto_collective_nests"] < r["auto_total_nests"]
    ]
    print(
        f"  c-opt configs where auto keeps nests independent: "
        f"{len(copt_independent)}"
    )
    assert copt_independent, (
        "expected at least one optimized-layout config where the auto "
        "decision rejects two-phase I/O (layout optimization beats "
        "runtime collectives)"
    )

    # (3) forcing two-phase where auto declined must cost time — the
    # decision is doing real work
    forced_losses = [
        r
        for (w, v, _, _), r in rows.items()
        if v == "c-opt"
        and r["auto_collective_nests"] == 0
        and r["forced_time_s"] > r["auto_time_s"]
    ]
    if not smoke:
        assert forced_losses, "forced two-phase never lost where auto declined"

    if not smoke:
        _write_artifact(n, node_grid, io_node_grid, rows)


def _write_artifact(n, node_grid, io_node_grid, rows):
    params = _scaled_params(n)
    payload = {
        "n": n,
        "machine_params": asdict(params),
        "node_grid": list(node_grid),
        "io_node_grid": list(io_node_grid),
        "sweep": [
            {"workload": w, "version": v, "n_io_nodes": nio, "n_nodes": p, **r}
            for (w, v, nio, p), r in sorted(rows.items())
        ],
        "summary": {
            "best_col_call_reduction": max(
                r["independent_calls"] / r["auto_calls"]
                for (w, v, _, _), r in rows.items()
                if v == "col" and r["auto_calls"] > 0
            ),
            "max_abs_event_vs_closed_delta": max(
                abs(r["event_vs_closed_delta"]) for r in rows.values()
            ),
        },
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"  wrote {ARTIFACT.name}")


def test_event_sim_reduces_to_closed_form(benchmark, smoke, json_out):
    """Acceptance criterion: with a single compute node no queue can
    overlap, and the event simulator must agree with the closed-form
    ``makespan`` within 1%."""
    n, _, _ = _sweep_grid(smoke)

    def measure():
        out = {}
        for workload in WORKLOAD_GRID:
            cfg = build_version("c-opt", build_workload(workload, n))
            params = _scaled_params(n)
            base = run_version_parallel(cfg, 1, params=params)
            ev = run_version_parallel(
                cfg, 1, params=params,
                collective=CollectiveConfig(mode="never"),
            )
            out[workload] = (base.time_s, ev.time_s)
        return out

    results = run_once(benchmark, measure)
    json_out("event_sim_vs_closed_form", {
        w: {"closed_s": c, "event_s": e} for w, (c, e) in results.items()
    }, n=n, workloads=WORKLOAD_GRID)
    print()
    for workload, (closed, event) in results.items():
        delta = abs(event - closed) / closed
        print(
            f"  {workload:8s} closed={closed:.4f}s event={event:.4f}s "
            f"delta={100 * delta:.3f}%"
        )
        assert delta <= 0.01, (workload, closed, event)
