"""Ablation: cost-model sensitivity — how the optimization's payoff
varies with the latency-to-bandwidth balance.

EXPERIMENTS.md notes that our improvement magnitudes exceed the paper's;
this bench quantifies the driver: as per-call latency shrinks relative
to transfer time, all versions converge toward pure volume costs and the
c-opt/col gap narrows — but never inverts.
"""

from dataclasses import replace

import pytest
from conftest import run_once

from repro.optimizer import build_version
from repro.parallel import run_version_parallel
from repro.workloads import build_workload


def test_latency_sweep(benchmark, settings, json_out):
    program = build_workload("trans", settings.n)

    def sweep():
        out = {}
        for factor in (0.1, 1.0, 10.0):
            params = replace(
                settings.params,
                io_latency_s=settings.params.io_latency_s * factor,
                sieve_gap_bytes=int(
                    settings.params.sieve_gap_bytes * factor
                ),
            )
            row = {}
            for version in ("col", "c-opt"):
                cfg = build_version(version, program, params=params)
                row[version] = run_version_parallel(
                    cfg, 16, params=params
                ).time_s
            out[factor] = row
        return out

    results = run_once(benchmark, sweep)
    print()
    ratios = {}
    for factor, row in sorted(results.items()):
        ratios[factor] = row["col"] / row["c-opt"]
        print(
            f"  latency x{factor:<4}: col {row['col']:9.3f}s  "
            f"c-opt {row['c-opt']:9.3f}s  gain {ratios[factor]:.1f}x"
        )
    # optimization always helps; higher latency widens the gap
    assert all(r >= 1.0 for r in ratios.values())
    assert ratios[10.0] >= ratios[0.1]
    json_out("ablation_latency", {
        factor: {**row, "gain": ratios[factor]}
        for factor, row in sorted(results.items())
    }, n=settings.n, factors=(0.1, 1.0, 10.0))
