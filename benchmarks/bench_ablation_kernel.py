"""Ablation: the min-gcd kernel-vector rule (Section 3.2.3).

When relation (1) leaves freedom — or when a layout merely has to be
orthogonal to some direction — the paper picks the kernel vector with
minimum gcd (i.e. the simplest hyperplane, a dimension re-ordering when
one exists).  This benchmark measures why: tile transfers under the
min-gcd hyperplane versus progressively more skewed (but equally
"valid") hyperplanes of the same kernel family.
"""

from conftest import run_once

from repro.layout import LinearLayout
from repro.runtime import IOContext, MachineParams, OutOfCoreArray, ParallelFileSystem


def _tile_cost(g, n=128, rows=16):
    params = MachineParams(io_latency_s=0.001)
    pfs = ParallelFileSystem(params)
    arr = OutOfCoreArray.create(
        f"X{g}", (n, n), LinearLayout.from_hyperplane(g), pfs, real=False
    )
    ctx = IOContext(params)
    arr.count_tile_io(((0, rows - 1), (0, n - 1)), ctx, is_write=False)
    return ctx.stats.calls, arr.map.total_slots


def test_min_gcd_choice(benchmark, json_out):
    def sweep():
        return {g: _tile_cost(g) for g in [(1, 0), (2, 1), (3, 1), (7, 4)]}

    results = run_once(benchmark, sweep)
    # hyperplanes as native tuple keys — the shared sanitizer encodes
    # them stably ('[1, 0]') and decode_key recovers the tuples
    json_out("ablation_kernel", {
        g: {"calls": calls, "slots": slots}
        for g, (calls, slots) in results.items()
    }, n=128, rows=16)
    print()
    for g, (calls, slots) in results.items():
        print(f"  g={g}: {calls} calls, file of {slots} slots")
    min_gcd_calls, min_gcd_slots = results[(1, 0)]
    for g, (calls, slots) in results.items():
        if g == (1, 0):
            continue
        # the skewed hyperplanes fragment the tile and inflate the file
        assert calls >= min_gcd_calls
        assert slots >= min_gcd_slots
    assert results[(7, 4)][0] > min_gcd_calls
