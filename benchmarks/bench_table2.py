"""Table 2: the six versions of the ten codes on 16 nodes.

One benchmark per code (so timings are attributable), plus a whole-table
benchmark that prints the reproduction and asserts the paper's
qualitative structure: the version ordering on average and the per-code
winners the paper calls out.
"""

import pytest
from conftest import run_once

from repro.experiments.harness import normalize_row, run_table2_row
from repro.experiments.table2 import table2
from repro.workloads import workload_names


@pytest.mark.parametrize("workload", workload_names())
def test_table2_row(benchmark, settings, workload, json_out):
    times = run_once(benchmark, run_table2_row, workload, settings)
    norm = normalize_row(times)
    json_out(
        f"table2_row.{workload}",
        {"times_s": times, "normalized": norm},
        n=settings.n, n_nodes=settings.table2_nodes,
    )
    # universal sanity: the combined version never loses to the
    # unoptimized default by more than noise
    assert norm["c-opt"] <= 101.0, norm
    # the hand-optimized chunked version is competitive with c-opt
    assert norm["h-opt"] <= norm["c-opt"] * 1.25, norm


def test_table2_full(benchmark, settings, json_out):
    text, data = run_once(benchmark, table2, settings)
    print("\n" + text)
    json_out(
        "table2_full", {"normalized": data, "text": text},
        n=settings.n, n_nodes=settings.table2_nodes,
    )

    def avg(version):
        return sum(data[w][version] for w in data) / len(data)

    # the paper's average ordering: h <= c <= d <= l <= col <= row
    assert avg("h-opt") <= avg("c-opt")
    assert avg("c-opt") <= avg("d-opt")
    assert avg("d-opt") <= avg("l-opt")
    assert avg("l-opt") <= 100.0
    assert avg("row") >= 100.0

    # per-code signatures the paper reports:
    # adi: loop transformations win; l-opt ~= c-opt, both beat d-opt
    assert data["adi"]["l-opt"] < data["adi"]["d-opt"]
    assert abs(data["adi"]["l-opt"] - data["adi"]["c-opt"]) < 10
    # trans: only layouts help; l-opt = col
    assert data["trans"]["l-opt"] == pytest.approx(100.0, abs=1)
    assert data["trans"]["d-opt"] < 60
    assert data["trans"]["d-opt"] == pytest.approx(
        data["trans"]["c-opt"], rel=0.05
    )
    # emit: col is already optimal — nothing can improve it
    assert data["emit"]["l-opt"] == pytest.approx(100.0, abs=1)
    assert data["emit"]["d-opt"] == pytest.approx(100.0, abs=1)
    assert data["emit"]["row"] > 110
    # gfunp: the combined approach beats both pure approaches decisively
    assert data["gfunp"]["c-opt"] < 0.7 * min(
        data["gfunp"]["l-opt"], data["gfunp"]["d-opt"]
    )
    # vpenta: data transformations required; c-opt = d-opt
    assert data["vpenta"]["d-opt"] == pytest.approx(
        data["vpenta"]["c-opt"], rel=0.05
    )
    assert data["vpenta"]["d-opt"] < data["vpenta"]["l-opt"]
