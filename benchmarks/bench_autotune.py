"""Joint co-optimization and the drift-recalibration loop, measured.

Three findings, all asserted:

- **Joint beats each baseline alone.**  On the blocked stencil (adi)
  and the multi-stage analytics pipeline, the joint decision — layouts
  + tiles + cache budget + aggregators chosen together against the
  machine model — produces a strictly lower measured makespan than
  both the paper's greedy global algorithm (``c-opt``) and the
  layout-only ILP: co-optimizing the machine knobs is worth real time,
  not just modeled time.  (The wins need the knobs to matter: this
  test runs at the full sweep size even under ``--smoke``; it costs
  ~1.5 s.)
- **The decisions stay near the I/O lower bound.**  The joint run's
  optimality ratio (measured transfers over the :mod:`repro.bounds`
  static bound) is pinned in the payload per workload, tying the
  autotuner's output to the bound telemetry.  The ratio may dip a
  hair below 1: the tile cache serves *cross-nest* reuse that the
  per-nest-summed bound does not credit.
- **The loop recovers from injected drift.**  Against a machine 3x
  slower in latency and 2x slower in bandwidth than believed, one
  ``observe()`` round recalibrates: the refitted parameters equal the
  true machine's to machine precision (the simulated pricing is
  exactly linear) and the follow-up drift lands inside the threshold.

Leaf keys entering the regression gate: ``*_time_s``, ``makespan``
(lower-better), ``predicted_cost_s``/``cost_drift``/``drift_before``/
``drift_after`` (lower-better via the ``predicted_cost``/``drift``
policy fragments) and the exact-match ``solver`` string — a silent
solver fallback in CI fails the gate as a changed decision, not as a
perf delta.
"""

import json
import pathlib
from dataclasses import replace

from conftest import run_once

from repro.autotune import AutotuneConfig, Autotuner, solve_joint
from repro.experiments.harness import _scaled_params
from repro.obs import Observability
from repro.optimizer import build_version, optimize_program_ilp
from repro.optimizer.strategies import VersionConfig
from repro.parallel import run_version_parallel
from repro.transforms.tiling import ooc_tiling
from repro.workloads import build_analytics, build_workload
from repro.workloads.registry import workload_names

SWEEP_N = 32
SMOKE_N = 16
N_NODES = 4

ARTIFACT = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_autotune.json"

_SECTIONS: dict = {}


def _program(name, n):
    build = build_workload if name in workload_names() else build_analytics
    return build(name, n)


def _params(n):
    return replace(_scaled_params(n), n_io_nodes=4)


def _measure(cfg, params, obs=None, **kw):
    return run_version_parallel(
        cfg, N_NODES, params=params, obs=obs, **kw
    )


def test_joint_vs_baselines(benchmark, smoke, json_out):
    """Measured makespan of the joint decision vs the greedy global
    algorithm and the layout-only ILP, plus the bound ratio of the
    joint run."""
    # the smoke sizes shrink the arrays until tile/cache knobs stop
    # mattering; run the full size always (~1.5 s total)
    n = SWEEP_N
    workloads = ("adi", "pipeline")

    def sweep():
        rows = {}
        params = _params(n)
        for wl in workloads:
            prog = _program(wl, n)
            greedy = _measure(build_version("c-opt", prog), params)
            gd = optimize_program_ilp(prog)
            ilp = _measure(VersionConfig(
                "ilp", gd.program, gd.layout_objects(), ooc_tiling
            ), params)
            decision = solve_joint(prog, params=params, n_nodes=N_NODES)
            obs = Observability()
            joint = _measure(
                decision.version_config(), params, obs=obs,
                **decision.run_kwargs()
            )
            measured = sum(
                r.measured_elements for r in obs.report.optimality
            )
            bound = sum(r.bound_elements for r in obs.report.optimality)
            rows[wl] = {
                "greedy_time_s": greedy.time_s,
                "ilp_time_s": ilp.time_s,
                "joint_time_s": joint.time_s,
                "solver": decision.solver,
                "predicted_cost_s": decision.predicted_cost_s,
                "cache_budget": decision.cache_budget,
                "optimality_ratio": measured / bound,
            }
        return rows

    rows = run_once(benchmark, sweep)
    json_out("autotune_joint", {"rows": rows},
             n=n, nodes=N_NODES, workloads=workloads)
    print()
    for wl, r in rows.items():
        print(f"  {wl:9s} greedy={r['greedy_time_s']:.4f}s "
              f"ilp={r['ilp_time_s']:.4f}s "
              f"joint={r['joint_time_s']:.4f}s "
              f"({r['solver']}, ratio {r['optimality_ratio']:.2f}x)")
    for wl, r in rows.items():
        fixed_best = min(r["greedy_time_s"], r["ilp_time_s"])
        assert r["joint_time_s"] < fixed_best, (
            f"{wl}: joint ({r['joint_time_s']:.4f}s) did not strictly "
            f"beat both baselines (best {fixed_best:.4f}s)"
        )
        # the ratio is pinned (not asserted >= 1): the tile cache
        # serves cross-nest reuse, which the per-nest-summed bound
        # does not credit, so a cached run can dip slightly below 1
        assert r["optimality_ratio"] > 0.5
    if not smoke:
        _SECTIONS["joint"] = {"n": n, "nodes": N_NODES, "rows": rows}
        _write_artifact()


def test_drift_recovery(benchmark, smoke, json_out):
    """Inject machine drift, let the loop recalibrate, and verify the
    predicted/measured agreement recovers inside the threshold."""
    n = SMOKE_N if smoke else SWEEP_N
    workload = "adi"
    latency_factor, bandwidth_factor = 3.0, 2.0

    def sweep():
        params = _params(n)
        true = replace(
            params,
            io_latency_s=params.io_latency_s * latency_factor,
            io_bandwidth_bps=params.io_bandwidth_bps / bandwidth_factor,
        )
        tuner = Autotuner(
            _program(workload, n), params=params, n_nodes=N_NODES,
            config=AutotuneConfig(),
        )
        tuner.solve()
        first = tuner.observe(tuner.run_once(true_params=true))
        second = tuner.observe(tuner.run_once(true_params=true))
        return {
            "drift_before": first["cost_drift"],
            "drift_after": second["cost_drift"],
            "first_event": first["event"],
            "second_event": second["event"],
            "recalibrations": tuner.recalibrations,
            "resolves": tuner.resolves,
            "fitted_latency_s": tuner.params.io_latency_s,
            "fitted_bandwidth_bps": tuner.params.io_bandwidth_bps,
            "true_latency_s": true.io_latency_s,
            "true_bandwidth_bps": true.io_bandwidth_bps,
            "threshold": tuner.config.cost_drift_threshold,
        }

    row = run_once(benchmark, sweep)
    json_out("autotune_drift", {"row": row},
             n=n, nodes=N_NODES, workload=workload,
             latency_factor=latency_factor,
             bandwidth_factor=bandwidth_factor)
    print()
    print(f"  drift {row['drift_before']:.3f} -> {row['drift_after']:.3f} "
          f"(threshold {row['threshold']}) after "
          f"{row['recalibrations']} recalibration(s)")
    assert row["first_event"] == "recalibrated", (
        f"injected drift {row['drift_before']:.3f} did not trip the loop"
    )
    assert row["drift_before"] > row["threshold"]
    assert row["second_event"] == "in_band", (
        f"post-recalibration drift {row['drift_after']:.3f} still over "
        f"threshold {row['threshold']}"
    )
    assert row["drift_after"] <= row["threshold"]
    # the simulated pricing is exactly linear: the fit recovers the
    # true machine to float tolerance
    assert abs(row["fitted_latency_s"] - row["true_latency_s"]) \
        <= 1e-9 * row["true_latency_s"]
    assert abs(row["fitted_bandwidth_bps"] - row["true_bandwidth_bps"]) \
        <= 1e-9 * row["true_bandwidth_bps"]
    if not smoke:
        _SECTIONS["drift"] = {"n": n, "nodes": N_NODES, "row": row}
        _write_artifact()


def _write_artifact():
    payload = {"sweep_n": SWEEP_N, **_SECTIONS}
    ARTIFACT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"  wrote {ARTIFACT.name}")
