"""Ablation: the all-but-innermost tiling rule (Section 3.3).

Runs every code's c-opt layouts under (a) traditional tiling (every
level), (b) the paper's rule (all but the innermost), and (c) innermost-
only strip-mining, and compares I/O calls — Figure 3 generalized to the
whole suite.
"""

import pytest
from conftest import run_once

from repro.engine import OOCExecutor
from repro.optimizer import build_version
from repro.transforms import ooc_tiling, traditional_tiling
from repro.transforms.tiling import TilingSpec
from repro.workloads import build_workload, workload_names


def innermost_only(nest):
    return TilingSpec((False,) * (nest.depth - 1) + (True,))


def _run(workload, settings, tiling):
    program = build_workload(workload, settings.n)
    cfg = build_version("c-opt", program, params=settings.params)
    total = sum(
        int(__import__("numpy").prod(a.shape(program.binding())))
        for a in program.arrays
    )
    ex = OOCExecutor(
        cfg.program,
        cfg.layouts,
        params=settings.params,
        real=False,
        tiling=tiling,
        memory_budget=max(64, total // settings.params.memory_fraction),
    )
    return ex.run().stats


@pytest.mark.parametrize("workload", workload_names())
def test_tiling_rule(benchmark, settings, workload, json_out):
    def sweep():
        return {
            "traditional": _run(workload, settings, traditional_tiling),
            "ooc": _run(workload, settings, ooc_tiling),
            "innermost-only": _run(workload, settings, innermost_only),
        }

    stats = run_once(benchmark, sweep)
    json_out(f"ablation_tiling.{workload}", stats, n=settings.n)
    print(
        f"\n{workload}: "
        + "  ".join(f"{k}={v.calls} calls" for k, v in stats.items())
    )
    # the paper's rule never does more I/O calls than traditional tiling
    assert stats["ooc"].calls <= stats["traditional"].calls * 1.01
