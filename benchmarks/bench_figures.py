"""Figures 1-3 of the paper."""

import pytest
from conftest import run_once

from repro.experiments.figure1 import figure1
from repro.experiments.figure2 import figure2, FIGURE2_LAYOUTS
from repro.experiments.figure3 import figure3


def test_figure1(benchmark, json_out):
    text = run_once(benchmark, figure1)
    print("\n" + text)
    assert "2 connected component(s)" in text
    # the paper's components: {U, V, W} and {X, Y}
    assert "['U', 'V', 'W']" in text
    assert "['X', 'Y']" in text
    json_out("figure1", {"text": text})


def test_figure2(benchmark, json_out):
    text = run_once(benchmark, figure2)
    print("\n" + text)
    for name, g, _ in FIGURE2_LAYOUTS:
        assert name in text
    # column-major: file order goes down the first column
    assert "0  4  8 12" in text
    json_out("figure2", {"text": text})


def test_figure3(benchmark, json_out):
    text, result = run_once(benchmark, figure3)
    print("\n" + text)
    # the paper's exact counts
    assert result.calls_per_tile_traditional == 4
    assert result.calls_per_tile_ooc == 2
    assert result.total_calls_ooc < result.total_calls_traditional
    json_out("figure3", result)
