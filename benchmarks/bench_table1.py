"""Table 1: program characteristics."""

from conftest import run_once

from repro.experiments.table1 import table1
from repro.workloads import WORKLOADS


def test_table1(benchmark, json_out):
    text = run_once(benchmark, table1)
    print("\n" + text)
    # every paper row present with its source and iteration count
    assert "mat" in text and "Nwchem" in text
    for meta in WORKLOADS.values():
        assert meta.name in text
        assert meta.source in text
    assert len(WORKLOADS) == 10
    json_out("table1", {
        "workloads": {
            name: {"source": meta.source, "name": meta.name}
            for name, meta in sorted(WORKLOADS.items())
        },
        "text": text,
    }, n_workloads=len(WORKLOADS))
