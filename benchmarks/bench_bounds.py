"""Achieved I/O vs the static lower bound (optimality telemetry).

Three findings, all asserted:

- **Every strategy sits above the bound.**  The red-blue-pebbling-style
  lower bound of :mod:`repro.bounds` is sound on the simulated machine:
  across workloads and all six layout strategies the run ratio
  (measured element transfers over the bound) is >= 1.
- **The optimized versions close most of the gap.**  ``c-opt`` lands at
  or below both fixed layouts on every workload, and strictly below on
  the blocked stencil kernel (adi) — the headline optimality story the
  telemetry is meant to surface per run.
- **The bound responds to memory the right way.**  For the
  Hong–Kung-classified contraction (mxm) the static bound is monotone
  nonincreasing in the memory capacity M — more memory never raises a
  lower bound — and every derivation rule of the pass fires somewhere
  in the suite.

The per-version ratios and bounds enter the regression-gated ``--json``
payload (leaf keys ``optimality_ratio`` — lower is better — and
``bound_elements`` — higher/tighter is better); outside ``--smoke`` the
sweep is also recorded in ``BENCH_bounds.json`` at the repo root.
"""

import json
import pathlib
from dataclasses import replace

from conftest import run_once

from repro.bounds import RULES, classify_nest, program_bounds
from repro.experiments.harness import _scaled_params
from repro.obs import Observability
from repro.optimizer.strategies import VERSION_NAMES, build_version
from repro.parallel import run_version_parallel
from repro.workloads import build_analytics, build_workload
from repro.workloads.registry import analytics_names, workload_names

SWEEP_N = 32
SMOKE_N = 16
N_NODES = 4

ARTIFACT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_bounds.json"

#: sections accumulated across this module's tests, written as one
#: artifact by each full-size test as it lands
_SECTIONS: dict = {}


def _program(name, n):
    build = build_workload if name in workload_names() else build_analytics
    return build(name, n)


def _params(n):
    return replace(_scaled_params(n), n_io_nodes=4)


def test_achieved_vs_bound_by_strategy(benchmark, smoke, json_out):
    """Run ratio (measured transfers / lower bound) per workload and
    strategy: always >= 1, and c-opt at or below both fixed layouts."""
    n = SMOKE_N if smoke else SWEEP_N
    workloads = ("mxm", "adi") if smoke else ("mxm", "adi", "syr2k", "window")

    def sweep():
        rows = {}
        for wl in workloads:
            prog = _program(wl, n)
            per_version = {}
            for ver in VERSION_NAMES:
                cfg = build_version(ver, prog)
                obs = Observability()
                run_version_parallel(
                    cfg, N_NODES, params=_params(n), obs=obs
                )
                measured = sum(
                    r.measured_elements for r in obs.report.optimality
                )
                bound = sum(
                    r.bound_elements for r in obs.report.optimality
                )
                per_version[ver] = {
                    "measured_elements": measured,
                    "bound_elements": bound,
                    "optimality_ratio": measured / bound,
                }
            rows[wl] = per_version
        return rows

    rows = run_once(benchmark, sweep)
    json_out("bounds_by_strategy", {"rows": rows},
             n=n, nodes=N_NODES, workloads=workloads,
             versions=VERSION_NAMES)
    print()
    for wl, per_version in rows.items():
        line = " ".join(
            f"{ver}={r['optimality_ratio']:.3f}x"
            for ver, r in per_version.items()
        )
        print(f"  {wl:8s} {line}")
    eps = 1e-9
    for wl, per_version in rows.items():
        for ver, r in per_version.items():
            assert r["optimality_ratio"] >= 1.0 - eps, (
                f"{wl}/{ver}: measured fell below the lower bound "
                f"({r['optimality_ratio']:.4f}x) — the bound is unsound"
            )
        copt = per_version["c-opt"]["optimality_ratio"]
        for fixed in ("col", "row"):
            assert copt <= per_version[fixed]["optimality_ratio"] + eps, (
                f"{wl}: c-opt ({copt:.3f}x) above fixed {fixed} layout"
            )
    adi = rows.get("adi")
    if adi is not None:
        fixed_best = min(adi["col"]["optimality_ratio"],
                         adi["row"]["optimality_ratio"])
        assert adi["c-opt"]["optimality_ratio"] < fixed_best, (
            "c-opt did not strictly beat both fixed layouts on adi"
        )
    if not smoke:
        _SECTIONS["by_strategy"] = {"n": n, "nodes": N_NODES, "rows": rows}
        _write_artifact()


def test_bound_monotone_in_memory(benchmark, smoke, json_out):
    """The static mxm bound never increases with memory capacity M,
    and at small M the Hong–Kung term strictly dominates the cold
    footprint (the bound genuinely tightens, it is not flat)."""
    # static analysis only — a larger n than the run sweeps is cheap
    # and puts the small-M points inside the Hong–Kung regime
    n = 64 if smoke else 128
    memories = (16, 64, 256, 1024, 4096)

    def sweep():
        prog = _program("mxm", n)
        rows = {}
        for m in memories:
            total = sum(
                nb.bound_elements
                for nb in program_bounds(prog, memory_elements=m)
            )
            rows[f"M={m}"] = {"bound_elements": total}
        return rows

    rows = run_once(benchmark, sweep)
    json_out("bounds_memory_sweep", {"rows": rows},
             n=n, workload="mxm", memories=memories)
    print()
    totals = [rows[f"M={m}"]["bound_elements"] for m in memories]
    for m, t in zip(memories, totals):
        print(f"  mxm n={n} M={m:5d}: bound = {t:12.1f} elements")
    assert all(a >= b for a, b in zip(totals, totals[1:])), (
        f"bound is not monotone nonincreasing in M: {totals}"
    )
    assert totals[0] > totals[-1], (
        "small-M Hong-Kung term never dominated; sweep is flat"
    )
    if not smoke:
        _SECTIONS["memory_sweep"] = {"n": n, "rows": rows}
        _write_artifact()


def test_rule_coverage(benchmark, smoke, json_out):
    """Every derivation rule of the pass fires on at least one nest of
    the suite (registry + analytics workloads)."""
    n = SMOKE_N if smoke else SWEEP_N
    names = tuple(workload_names()) + tuple(analytics_names())

    def sweep():
        counts = {rule: 0 for rule in RULES}
        for name in names:
            for nest in _program(name, n).nests:
                rule, _ = classify_nest(nest)
                counts[rule] += 1
        return counts

    counts = run_once(benchmark, sweep)
    json_out("bounds_rule_coverage", {"counts": counts},
             n=n, workloads=names)
    print()
    for rule, count in counts.items():
        print(f"  {rule:24s} {count:3d} nest(s)")
    missing = [rule for rule, count in counts.items() if count == 0]
    assert not missing, f"derivation rule(s) never fired: {missing}"
    if not smoke:
        _SECTIONS["rule_coverage"] = {"n": n, "counts": counts}
        _write_artifact()


def _write_artifact():
    payload = {"sweep_n": SWEEP_N, **_SECTIONS}
    ARTIFACT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"  wrote {ARTIFACT.name}")
