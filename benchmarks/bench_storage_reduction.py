"""Section 3.4: reducing the extra storage of general data
transformations.

The paper's example family ``[[a, b], [c, 0]]`` over ``u, v`` in
``[1, N']``: composing a unimodular transformation that keeps the
locality-critical zero shrinks the declared bounding box substantially.
"""

import pytest
from conftest import run_once

from repro.layout import expansion_factor, reduce_storage, storage_box
from repro.layout.storage import box_volume
from repro.linalg import IMat


def _sweep():
    results = []
    for a, b, c in [(3, 1, 2), (2, 1, 1), (5, 2, 3), (4, 3, 1)]:
        access = IMat([[a, b], [c, 0]])
        ranges = [(1, 64), (1, 64)]
        before = box_volume(storage_box(access, ranges))
        e, new_l, after = reduce_storage(access, ranges)
        results.append((a, b, c, before, after, e))
    return results


def test_storage_reduction(benchmark, json_out):
    results = run_once(benchmark, _sweep)
    json_out("storage_reduction", [
        {"access": [a, b, c], "declared_before": before,
         "declared_after": after, "E": repr(e)}
        for a, b, c, before, after, e in results
    ], extent=64, n_cases=len(results))
    print()
    for a, b, c, before, after, e in results:
        print(
            f"access [[{a},{b}],[{c},0]]: declared {before} -> {after} "
            f"elements ({100 * after / before:.0f}%), E = {e!r}"
        )
        assert after <= before
        # the paper's example achieves a strict reduction whenever a != c
        if a != c:
            assert after < before


def test_expansion_factor_identity_is_one(benchmark):
    factor = run_once(
        benchmark, expansion_factor, IMat.identity(2), [(0, 63), (0, 63)]
    )
    assert factor == pytest.approx(1.0)
