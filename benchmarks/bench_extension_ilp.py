"""Extension: ILP-optimal layout assignment (the paper's announced
future work, Section 5) versus the greedy global algorithm.

The exact optimum can never lose in the shared cost model; on most of
the suite the greedy order already finds it — which is itself a finding
worth recording (the paper's heuristic is near-optimal on its own
benchmark suite).
"""

import pytest
from conftest import run_once

from repro.engine import OOCExecutor
from repro.optimizer import optimize_program, optimize_program_ilp
from repro.transforms import normalize_program
from repro.workloads import build_workload, workload_names


def _run(decision, settings, program):
    import numpy as np

    total = sum(
        int(np.prod(a.shape(program.binding()))) for a in program.arrays
    )
    ex = OOCExecutor(
        decision.program,
        decision.layout_objects(default="col"),
        params=settings.params,
        real=False,
        memory_budget=max(64, total // settings.params.memory_fraction),
    )
    return ex.run().stats.total_time_s


@pytest.mark.parametrize("workload", workload_names())
def test_ilp_vs_greedy(benchmark, settings, workload, json_out):
    program = normalize_program(build_workload(workload, settings.n))

    def sweep():
        greedy = optimize_program(program)
        exact = optimize_program_ilp(program)
        return {
            "greedy": _run(greedy, settings, program),
            "ilp": _run(exact, settings, program),
        }

    results = run_once(benchmark, sweep)
    json_out(f"ilp_vs_greedy.{workload}", results, n=settings.n)
    print(f"\n{workload}: greedy {results['greedy']:.3f}s, "
          f"ilp {results['ilp']:.3f}s")
    # The ILP is optimal in the *per-iteration locality* model; executed
    # time also contains tile-footprint volume effects outside that model
    # (syr2k: two model-equal optima differ ~16% in execution).  The
    # exact optimizer must stay competitive everywhere regardless.
    assert results["ilp"] <= results["greedy"] * 1.25
