"""Ablation: processing nests in cost order (step 3.a).

The paper optimizes the costliest nest first so the cheap nests adapt to
its layouts.  Compare against processing in program order on a program
whose *last* nest dominates the cost: cost ordering must not lose, and
when the orders disagree it should win.
"""

from conftest import run_once

from repro.engine import OOCExecutor
from repro.ir import ProgramBuilder
from repro.optimizer import optimize_program
from repro.runtime import MachineParams


def skewed_cost_program(n=96):
    """nest1 is cheap (1 statement, weight 1); nest2 is hot (weight 8).
    They want conflicting layouts for the shared array S."""
    b = ProgramBuilder("skewed", params=("N",), default_binding={"N": n})
    N = b.param("N")
    S = b.array("S", (N, N))
    A = b.array("A", (N, N))
    B2 = b.array("B", (N, N))
    with b.nest("cheap", weight=1) as nb:
        i, j = nb.loop("i", 1, N), nb.loop("j", 1, N)
        nb.assign(A[i, j], S[j, i] + 1.0)  # wants S column-major
    with b.nest("hot", weight=8) as nb:
        i, j = nb.loop("i", 1, N), nb.loop("j", 1, N)
        nb.assign(S[i, j], S[i, j] + B2[j, i])  # wants S row-major
    return b.build()


def _time(program, order):
    decision = optimize_program(program, nest_order=order, allow_loop=False)
    params = MachineParams(io_latency_s=0.002, sieve_gap_bytes=4096)
    ex = OOCExecutor(
        decision.program,
        decision.layout_objects(default="col"),
        params=params,
        real=False,
        memory_budget=16 * program.binding()["N"],
    )
    return ex.run().stats.io_time_s, decision.layouts


def test_cost_order_wins(benchmark, json_out):
    program = skewed_cost_program()

    def sweep():
        return {order: _time(program, order) for order in ("cost", "program")}

    results = run_once(benchmark, sweep)
    json_out("ablation_order", {
        order: {"io_time_s": t, "layouts": {k: list(v) for k, v in lay.items()}}
        for order, (t, lay) in results.items()
    }, n=96)
    print()
    for order, (t, layouts) in results.items():
        print(f"  {order}-ordered: {t:.3f}s, layouts {layouts}")
    t_cost, lay_cost = results["cost"]
    t_prog, lay_prog = results["program"]
    # the hot nest's preference must win under cost ordering
    assert lay_cost["S"] == (1, 0)  # row-major
    assert t_cost <= t_prog * 1.01
