"""Shared benchmark fixtures.

Benchmarks regenerate the paper's tables/figures; they are *macro*
benchmarks, so every one runs a single round (the results are
deterministic — there is no noise to average away).

``--json PATH`` collects every benchmark's machine-readable result dict
(each test publishes through the ``json_out`` fixture) and writes one
JSON document at session end — the artifact CI uploads next to the
Perfetto trace.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.experiments.harness import ExperimentSettings

#: array extent used by the benchmark harness (paper: 4096; the machine
#: constants are scaled to preserve the paper's geometry, see
#: repro.experiments.harness._scaled_params)
BENCH_N = 128

#: results registered by the ``json_out`` fixture, keyed by bench name
_JSON_RESULTS: dict = {}


def pytest_addoption(parser):
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="CI smoke mode: tiny problem sizes, reduced sweep grids, "
        "relaxed win-margin assertions (keeps benchmarks from rotting "
        "without paying full-sweep cost)",
    )
    parser.addoption(
        "--json",
        action="store",
        default=None,
        metavar="PATH",
        help="write every benchmark's machine-readable result dict to "
        "PATH as one JSON document at session end",
    )


def _sanitize(obj):
    """Make a benchmark result JSON-serializable: numpy scalars/arrays,
    dataclasses and ``to_dict()`` carriers, tuple keys, sets."""
    if isinstance(obj, dict):
        return {
            k if isinstance(k, str) else repr(k): _sanitize(v)
            for k, v in obj.items()
        }
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [_sanitize(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if hasattr(obj, "to_dict"):
        return _sanitize(obj.to_dict())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return _sanitize(dataclasses.asdict(obj))
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


@pytest.fixture(scope="session")
def json_out(request):
    """``json_out(name, payload)`` registers one bench's result dict for
    the ``--json`` artifact (collected regardless, written only when the
    option is given — so call sites need no conditional)."""

    def emit(name: str, payload) -> None:
        _JSON_RESULTS[name] = _sanitize(payload)

    return emit


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--json")
    if not path or not _JSON_RESULTS:
        return
    doc = {
        "smoke": bool(session.config.getoption("--smoke")),
        "results": dict(sorted(_JSON_RESULTS.items())),
    }
    with open(path, "w") as f:
        json.dump(doc, f, indent=1, sort_keys=True)
    print(f"\nwrote {len(_JSON_RESULTS)} benchmark result(s) to {path}")


@pytest.fixture(scope="session")
def smoke(request) -> bool:
    return request.config.getoption("--smoke")


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    return ExperimentSettings(n=BENCH_N)


def run_once(benchmark, fn, *args, **kwargs):
    """One deterministic measurement round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
