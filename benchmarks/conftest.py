"""Shared benchmark fixtures.

Benchmarks regenerate the paper's tables/figures; they are *macro*
benchmarks, so every one runs a single round (the results are
deterministic — there is no noise to average away).

``--json PATH`` collects every benchmark's machine-readable result dict
(each test publishes through the ``json_out`` fixture) and writes one
schema-versioned baseline document (:mod:`repro.obs.baselines`) at
session end — the artifact CI uploads next to the Perfetto trace, and
the document ``python -m repro.obs regress check`` diffs against a
committed baseline.
"""

import pytest

from repro.experiments.harness import ExperimentSettings
from repro.obs.baselines import make_envelope, write_baseline
from repro.obs.export import sanitize

#: array extent used by the benchmark harness (paper: 4096; the machine
#: constants are scaled to preserve the paper's geometry, see
#: repro.experiments.harness._scaled_params)
BENCH_N = 128

#: results registered by the ``json_out`` fixture, keyed by bench name
_JSON_RESULTS: dict = {}

#: per-bench capture configuration (problem sizes, sweep grids) —
#: compared exactly by the regression gate so a config drift fails as
#: "config changed", never as a fake perf delta
_JSON_META: dict = {}


def pytest_addoption(parser):
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="CI smoke mode: tiny problem sizes, reduced sweep grids, "
        "relaxed win-margin assertions (keeps benchmarks from rotting "
        "without paying full-sweep cost)",
    )
    parser.addoption(
        "--json",
        action="store",
        default=None,
        metavar="PATH",
        help="write every benchmark's machine-readable result dict to "
        "PATH as one baseline document at session end",
    )


@pytest.fixture(scope="session")
def json_out(request):
    """``json_out(name, payload, **meta)`` registers one bench's result
    dict for the ``--json`` baseline (collected regardless, written only
    when the option is given — so call sites need no conditional).
    Keyword ``meta`` records the configuration the payload was measured
    under; the regression gate holds it to exact equality."""

    def emit(name: str, payload, **meta) -> None:
        _JSON_RESULTS[name] = sanitize(payload)
        if meta:
            _JSON_META[name] = sanitize(meta)

    return emit


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--json")
    if not path or not _JSON_RESULTS:
        return
    doc = make_envelope(
        _JSON_RESULTS,
        _JSON_META,
        smoke=bool(session.config.getoption("--smoke")),
    )
    write_baseline(path, doc)
    print(f"\nwrote {len(_JSON_RESULTS)} benchmark result(s) to {path}")


@pytest.fixture(scope="session")
def smoke(request) -> bool:
    return request.config.getoption("--smoke")


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    return ExperimentSettings(n=BENCH_N)


def run_once(benchmark, fn, *args, **kwargs):
    """One deterministic measurement round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
