"""Shared benchmark fixtures.

Benchmarks regenerate the paper's tables/figures; they are *macro*
benchmarks, so every one runs a single round (the results are
deterministic — there is no noise to average away).
"""

import pytest

from repro.experiments.harness import ExperimentSettings

#: array extent used by the benchmark harness (paper: 4096; the machine
#: constants are scaled to preserve the paper's geometry, see
#: repro.experiments.harness._scaled_params)
BENCH_N = 128


def pytest_addoption(parser):
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="CI smoke mode: tiny problem sizes, reduced sweep grids, "
        "relaxed win-margin assertions (keeps benchmarks from rotting "
        "without paying full-sweep cost)",
    )


@pytest.fixture(scope="session")
def smoke(request) -> bool:
    return request.config.getoption("--smoke")


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    return ExperimentSettings(n=BENCH_N)


def run_once(benchmark, fn, *args, **kwargs):
    """One deterministic measurement round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
