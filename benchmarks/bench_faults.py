"""Fault injection & resilience sweep: fault rate x policy on adi/mxm,
plus the seeded straggler scenario.

Two findings, both asserted:

- **Transient errors need a retry budget.**  With no policy a single
  failed call aborts the run (`TransientIOError`); with retry +
  backoff the run completes at a bounded overhead (the re-issued
  attempts and backoff delay are exact, visible in the stats), and
  hedging adds duplicate reads only when a straggler makes them pay.
- **Hedged reads defeat stragglers.**  A persistent 8x straggler I/O
  node inflates the no-policy makespan >=2x; hedging every read that
  lands on it (waiting for the replica's nominal service instead)
  recovers >=50% of the loss — the classic tail-tolerance trade of
  extra I/O volume for latency.

Everything is seeded and bit-deterministic, so the ``--json`` envelope
is regression-gated like every other benchmark; outside ``--smoke`` the
sweep also writes ``BENCH_faults.json`` at the repo root.
"""

import json
import pathlib
from dataclasses import asdict, replace

from conftest import run_once

from repro.experiments.harness import _scaled_params
from repro.faults import (
    FaultConfig,
    FaultPlan,
    ResiliencePolicy,
    TransientIOError,
)
from repro.optimizer import build_version
from repro.parallel import run_version_parallel
from repro.workloads import build_workload

SWEEP_N = 48
SMOKE_N = 24

WORKLOAD_GRID = ("adi", "mxm")
VERSION = "c-opt"
N_NODES = 4
N_IO_NODES = 4
SEED = 7

RATE_GRID = (0.01, 0.05)
SMOKE_RATE_GRID = (0.05,)

#: policy grid of the rate sweep: the do-nothing baseline (dies on the
#: first error), plain retry, and retry + hedged reads
POLICY_GRID = (
    ("none", ResiliencePolicy()),
    ("retry", ResiliencePolicy(max_retries=4)),
    ("retry+hedge", ResiliencePolicy(max_retries=4, hedge_reads=True)),
)

STRAGGLER_NODE = 0
STRAGGLER_MULT = 8.0

ARTIFACT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_faults.json"


def _params(n):
    return replace(_scaled_params(n), n_io_nodes=N_IO_NODES)


def _row(run):
    s = run.total_stats
    return {
        "completed": True,
        "time_s": run.time_s,
        "calls": s.calls,
        "retries": s.retries,
        "failed_calls": s.failed_calls,
        "hedged_calls": s.hedged_calls,
        "retry_delay_s": s.retry_delay_s,
    }


def test_fault_rate_policy_sweep(benchmark, smoke, json_out):
    n = SMOKE_N if smoke else SWEEP_N
    rates = SMOKE_RATE_GRID if smoke else RATE_GRID

    def sweep():
        rows = {}
        for workload in WORKLOAD_GRID:
            cfg = build_version(VERSION, build_workload(workload, n))
            params = _params(n)
            for rate in rates:
                plan = FaultPlan(
                    seed=SEED, read_error_rate=rate, write_error_rate=rate
                )
                for pname, policy in POLICY_GRID:
                    try:
                        run = run_version_parallel(
                            cfg, N_NODES, params=params,
                            faults=FaultConfig(plan, policy),
                        )
                        rows[(workload, rate, pname)] = _row(run)
                    except TransientIOError as exc:
                        # no retry budget: the first failed call aborts
                        # the run — deterministically, at the same op
                        rows[(workload, rate, pname)] = {
                            "completed": False,
                            "failed_op_index": exc.op_index,
                            "failed_io_node": exc.io_node,
                        }
        return rows

    rows = run_once(benchmark, sweep)
    json_out(
        "fault_rate_policy_sweep",
        {"rows": {k: r for k, r in sorted(rows.items())}},
        n=n, workloads=WORKLOAD_GRID, version=VERSION, seed=SEED,
        rates=rates, policies=[p for p, _ in POLICY_GRID],
        n_nodes=N_NODES, n_io_nodes=N_IO_NODES,
    )

    print()
    print(
        "  workload rate  policy      | done |    time  retries"
        "  failed hedged   delay"
    )
    for (w, rate, pname), r in sorted(rows.items()):
        if r["completed"]:
            print(
                f"  {w:8s} {rate:.2f}  {pname:11s} |  yes |"
                f" {r['time_s']:7.3f} {r['retries']:8d}"
                f" {r['failed_calls']:7d} {r['hedged_calls']:6d}"
                f" {r['retry_delay_s']:7.3f}"
            )
        else:
            print(
                f"  {w:8s} {rate:.2f}  {pname:11s} |   no |"
                f" aborted at op {r['failed_op_index']}"
                f" (io_node {r['failed_io_node']})"
            )

    # the do-nothing policy must die on every faulted config, the retry
    # policies must complete every one — that asymmetry IS the subsystem
    for (w, rate, pname), r in rows.items():
        if pname == "none":
            assert not r["completed"], (
                f"no-policy run survived {rate:.0%} errors on {w}"
            )
        else:
            assert r["completed"], (
                f"policy {pname} failed to absorb {rate:.0%} errors on {w}"
            )
            assert r["retries"] > 0 and r["retries"] == r["failed_calls"], (
                "every failed attempt must be retried exactly once "
                f"({w}, {rate}, {pname}): {r}"
            )

    if not smoke:
        _write_artifact(n, rates, rows)


def test_straggler_hedging_recovery(benchmark, smoke, json_out):
    """Acceptance scenario: on mxm, a seeded straggler I/O node costs
    the no-policy run >=2x the fault-free makespan, and the hedged-read
    policy recovers >=50% of the regression."""
    n = SMOKE_N if smoke else SWEEP_N

    def measure():
        cfg = build_version(VERSION, build_workload("mxm", n))
        params = _params(n)
        # fault-free reference with the injector active (same per-call
        # execution shape, empty plan) — the honest denominator
        free = run_version_parallel(
            cfg, N_NODES, params=params,
            faults=FaultConfig(FaultPlan(seed=SEED)),
        )
        plan = FaultPlan(
            seed=SEED, stragglers={STRAGGLER_NODE: STRAGGLER_MULT}
        )
        nopol = run_version_parallel(
            cfg, N_NODES, params=params, faults=FaultConfig(plan)
        )
        hedged = run_version_parallel(
            cfg, N_NODES, params=params,
            faults=FaultConfig(
                plan, ResiliencePolicy(hedge_reads=True, hedge_threshold=2.0)
            ),
        )
        return free, nopol, hedged

    free, nopol, hedged = run_once(benchmark, measure)
    regression = nopol.time_s / free.time_s
    recovered = (
        (nopol.time_s - hedged.time_s) / (nopol.time_s - free.time_s)
        if nopol.time_s > free.time_s
        else 0.0
    )
    json_out(
        "fault_straggler_recovery",
        {
            "fault_free": _row(free),
            "straggler_no_policy": _row(nopol),
            "straggler_hedged": _row(hedged),
            "regression_x": regression,
            "recovered_frac": recovered,
        },
        n=n, workload="mxm", version=VERSION, seed=SEED,
        straggler_node=STRAGGLER_NODE, straggler_mult=STRAGGLER_MULT,
        n_nodes=N_NODES, n_io_nodes=N_IO_NODES,
    )

    print()
    print(f"  fault-free       : {free.time_s:8.3f}s")
    print(
        f"  straggler (none) : {nopol.time_s:8.3f}s"
        f"  ({regression:.2f}x fault-free)"
    )
    print(
        f"  straggler (hedge): {hedged.time_s:8.3f}s"
        f"  (+{hedged.total_stats.hedged_calls} hedged reads,"
        f" {100 * recovered:.1f}% recovered)"
    )
    assert regression >= 2.0, (
        f"an {STRAGGLER_MULT:.0f}x straggler should cost >=2x makespan, "
        f"got {regression:.2f}x"
    )
    assert recovered >= 0.5, (
        f"hedged reads should recover >=50% of the straggler loss, "
        f"got {100 * recovered:.1f}%"
    )
    assert hedged.total_stats.hedged_calls > 0


def _write_artifact(n, rates, rows):
    payload = {
        "n": n,
        "machine_params": asdict(_params(n)),
        "seed": SEED,
        "rates": list(rates),
        "sweep": [
            {"workload": w, "rate": rate, "policy": pname, **r}
            for (w, rate, pname), r in sorted(rows.items())
        ],
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"  wrote {ARTIFACT.name}")
