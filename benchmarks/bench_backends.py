"""Storage-backend matrix: accounting equivalence, chunk-per-tile
wins, per-stage pipeline layouts, and the simulated object store.

Four findings, all asserted:

- **Accounting is backend-invariant.**  The cost model prices the
  *plan* (contiguous runs against the layout), so the folded
  ``IOStats`` of every data-carrying backend — memory, mmap, chunked,
  object store — are identical, and so are the array contents.  What
  differs per backend is the *measured* side (``BackendMetrics``).
- **Chunk-per-tile beats flat mmap on blocked files.**  ``h-opt``
  stores adi's interleaved arrays in misaligned (1-based) tile blocks;
  under a flat mmap every tile shatters into per-row extents, while the
  chunked backend moves one object per tile footprint — far fewer
  operations (at the price of whole-chunk bytes, also reported).
- **Per-stage intermediate layouts beat a fixed layout.**  The
  ``pipeline`` analytics workload materializes intermediates whose
  producer and consumers disagree on orientation; ``d-opt``/``c-opt``
  pick per-array layouts and beat fixed row-major on modeled I/O *and*
  on measured mmap operations.
- **The object store prices transfers deterministically.**  Modeled
  GET/PUT latency + bandwidth give a wall time that is a pure function
  of the plan, so it sits in the regression-gated payload, scales
  monotonically with latency, and its per-object accounting folds back
  to the op totals exactly.

Measured wall-clock seconds of the mmap/chunked backends are real time
and therefore *excluded* from the ``--json`` payload (the regression
gate holds floats to ±1%); they are printed and, outside ``--smoke``,
recorded in ``BENCH_backends.json`` at the repo root.
"""

import json
import pathlib

import numpy as np
from conftest import run_once

from repro.backends import ChunkedBackend, MmapBackend, ObjectStoreParams, \
    SimulatedObjectStore, resolve_backend
from repro.engine import OOCExecutor
from repro.obs import Observability
from repro.optimizer import build_version
from repro.workloads import build_analytics, build_workload

SWEEP_N = 24
SMOKE_N = 16

#: backends of the equivalence matrix (simulate carries no data, so it
#: is checked for stats only)
MATRIX = ("memory", "mmap", "chunked", "object")

ARTIFACT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_backends.json"

#: sections accumulated across this module's tests, written as one
#: artifact by each full-size test as it lands
_SECTIONS: dict = {}


def _make_backend(kind):
    if kind == "mmap":
        return MmapBackend()
    if kind == "chunked":
        return ChunkedBackend()
    if kind == "object":
        return SimulatedObjectStore()
    return resolve_backend(kind)


def _execute(cfg, backend, *, obs=None):
    """Run one version on one backend; return (result, contents)."""
    with OOCExecutor(
        cfg.program, cfg.layouts, tiling=cfg.tiling,
        storage_spec=cfg.storage_spec, backend=backend, obs=obs,
    ) as ex:
        result = ex.run()
        arrays = (
            {a.name: ex.array_data(a.name).copy() for a in cfg.program.arrays}
            if ex.backend.real else None
        )
    return result, arrays


def _measured_ints(m):
    """The deterministic slice of BackendMetrics (no wall seconds)."""
    return {
        "get_ops": m.get_ops, "put_ops": m.put_ops,
        "bytes_read": m.bytes_read, "bytes_written": m.bytes_written,
    }


def test_backend_equivalence_matrix(benchmark, smoke, json_out):
    """Every backend yields bit-identical folded stats and contents."""
    n = SMOKE_N if smoke else SWEEP_N
    workloads = ("mxm", "window") if smoke else ("mxm", "adi", "window")

    def sweep():
        rows = {}
        for wl in workloads:
            prog = (
                build_workload(wl, n) if wl in ("mxm", "adi")
                else build_analytics(wl, n)
            )
            cfg = build_version("c-opt", prog)
            ref, ref_arrays = _execute(cfg, "memory")
            sim, _ = _execute(cfg, "simulate")
            assert str(sim.stats) == str(ref.stats)
            per_backend = {"memory": {"stats": str(ref.stats)}}
            for kind in MATRIX[1:]:
                res, arrays = _execute(cfg, _make_backend(kind))
                assert str(res.stats) == str(ref.stats), (
                    f"{wl}/{kind}: accounted stats diverged from memory: "
                    f"{res.stats} vs {ref.stats}"
                )
                for name, data in arrays.items():
                    assert np.array_equal(data, ref_arrays[name]), (
                        f"{wl}/{kind}: array {name} contents differ"
                    )
                per_backend[kind] = {
                    "stats": str(res.stats),
                    **_measured_ints(res.backend_metrics),
                }
            rows[wl] = per_backend
        return rows

    rows = run_once(benchmark, sweep)
    json_out(
        "backend_equivalence", {"rows": rows},
        n=n, workloads=workloads, backends=MATRIX, version="c-opt",
    )
    print()
    for wl, per_backend in rows.items():
        print(f"  {wl}: accounted {per_backend['memory']['stats']}")
        for kind in MATRIX[1:]:
            r = per_backend[kind]
            print(
                f"    {kind:8s} measured ops={r['get_ops'] + r['put_ops']:6d}"
                f" bytes={r['bytes_read'] + r['bytes_written']:9d}"
            )
    if not smoke:
        _SECTIONS["equivalence"] = {"n": n, "rows": rows}
        _write_artifact()


def test_chunk_per_tile_beats_flat_mmap(benchmark, smoke, json_out):
    """adi under h-opt (misaligned tile-blocked interleaved files):
    one chunk per tile footprint needs far fewer transfer operations
    than the flat mmap's per-row extents."""
    n = SMOKE_N if smoke else SWEEP_N

    def measure():
        cfg = build_version("h-opt", build_workload("adi", n))
        mm, mm_arrays = _execute(cfg, MmapBackend())
        ch, ch_arrays = _execute(cfg, ChunkedBackend())
        assert str(mm.stats) == str(ch.stats)
        for name, data in ch_arrays.items():
            assert np.array_equal(data, mm_arrays[name])
        return mm, ch

    mm, ch = run_once(benchmark, measure)
    mm_m, ch_m = mm.backend_metrics, ch.backend_metrics
    payload = {
        "mmap": _measured_ints(mm_m),
        "chunked": _measured_ints(ch_m),
        "op_reduction_x": mm_m.ops / ch_m.ops,
    }
    json_out("backend_chunk_per_tile", payload, n=n, workload="adi",
             version="h-opt")
    print()
    print(f"  adi h-opt n={n}: mmap ops={mm_m.ops} "
          f"bytes={mm_m.bytes_moved} wall={mm_m.wall_s:.4f}s")
    print(f"                 chunked ops={ch_m.ops} "
          f"bytes={ch_m.bytes_moved} wall={ch_m.wall_s:.4f}s "
          f"({payload['op_reduction_x']:.2f}x fewer ops)")
    assert ch_m.ops < mm_m.ops, (
        f"chunk-per-tile did not reduce operations: chunked {ch_m.ops} "
        f"vs mmap {mm_m.ops}"
    )
    if not smoke:
        _SECTIONS["chunk_per_tile"] = {
            "n": n, **payload,
            "mmap_wall_s": mm_m.wall_s, "chunked_wall_s": ch_m.wall_s,
        }
        _write_artifact()


def test_pipeline_per_stage_layouts(benchmark, smoke, json_out):
    """The 3-stage analytics pipeline: choosing layouts per
    intermediate (d-opt/c-opt) beats a fixed row-major layout on
    modeled I/O and on measured mmap operations."""
    n = SMOKE_N if smoke else SWEEP_N
    versions = ("row", "d-opt", "c-opt")

    def sweep():
        rows = {}
        prog = build_analytics("pipeline", n)
        for ver in versions:
            cfg = build_version(ver, prog)
            res, _ = _execute(cfg, MmapBackend())
            rows[ver] = {
                "calls": res.stats.calls,
                "modeled_io_s": res.stats.io_time_s,
                "mmap_ops": res.backend_metrics.ops,
            }
        return rows

    rows = run_once(benchmark, sweep)
    json_out("backend_pipeline_layouts", {"rows": rows},
             n=n, workload="pipeline", versions=versions, backend="mmap")
    print()
    for ver, r in rows.items():
        print(f"  pipeline {ver:6s} modeled_io={r['modeled_io_s']:8.3f}s "
              f"calls={r['calls']:5d} mmap ops={r['mmap_ops']:5d}")
    for ver in ("d-opt", "c-opt"):
        assert rows[ver]["modeled_io_s"] < rows["row"]["modeled_io_s"], (
            f"per-stage layouts ({ver}) did not beat fixed row-major "
            f"on modeled I/O"
        )
        assert rows[ver]["mmap_ops"] < rows["row"]["mmap_ops"], (
            f"per-stage layouts ({ver}) did not beat fixed row-major "
            f"on measured mmap operations"
        )
    if not smoke:
        _SECTIONS["pipeline_layouts"] = {"n": n, "rows": rows}
        _write_artifact()


def test_object_store_sweep(benchmark, smoke, json_out):
    """Latency sweep of the simulated object store: modeled wall time
    is deterministic, grows monotonically with GET latency, and the
    per-object accounting folds back to the op totals exactly."""
    n = SMOKE_N if smoke else SWEEP_N
    get_latencies = (0.010, 0.030, 0.100)

    def sweep():
        cfg = build_version("c-opt", build_analytics("ajoin", n))
        rows = {}
        for lat in get_latencies:
            store = SimulatedObjectStore(
                ObjectStoreParams(get_latency_s=lat)
            )
            res, _ = _execute(cfg, store)
            m = res.backend_metrics
            gets = sum(g for g, _ in store.object_counts.values())
            puts = sum(p for _, p in store.object_counts.values())
            # fold against the live metrics: reading contents back in
            # _execute adds GETs past the run-end snapshot
            live = store.metrics
            assert gets == live.get_ops and puts == live.put_ops, (
                "per-object GET/PUT accounting does not fold to totals"
            )
            rows[lat] = {
                **_measured_ints(m),
                "objects_touched": store.objects_touched,
                "modeled_wall_s": m.wall_s,
                "io_ratio": m.wall_s / res.stats.io_time_s,
            }
        return rows

    rows = run_once(benchmark, sweep)
    json_out(
        "backend_object_store",
        {"rows": {f"{lat * 1e3:.0f}ms": r for lat, r in rows.items()}},
        n=n, workload="ajoin", version="c-opt",
        get_latencies_s=get_latencies,
    )
    print()
    walls = []
    for lat, r in rows.items():
        walls.append(r["modeled_wall_s"])
        print(f"  get={lat * 1e3:5.0f}ms: ops={r['get_ops'] + r['put_ops']:5d} "
              f"objects={r['objects_touched']:4d} "
              f"wall={r['modeled_wall_s']:8.3f}s "
              f"ratio={r['io_ratio']:.3f}")
    assert walls == sorted(walls) and walls[0] < walls[-1], (
        "object-store wall time is not monotone in GET latency"
    )
    if not smoke:
        _SECTIONS["object_store"] = {
            "n": n,
            "rows": {f"{lat * 1e3:.0f}ms": r for lat, r in rows.items()},
        }
        _write_artifact()


def test_measured_vs_predicted_drift(benchmark, smoke, json_out):
    """Each measuring backend publishes ``backend.io_ratio`` (measured
    wall over modeled I/O seconds) through the observability gauges —
    the drift telemetry's companion number against a real transfer
    path.  Only the object store's ratio is deterministic, so only it
    enters the gated payload; the real-time ratios are printed."""
    n = SMOKE_N if smoke else SWEEP_N

    def sweep():
        cfg = build_version("c-opt", build_workload("mxm", n))
        ratios = {}
        for kind in ("mmap", "chunked", "object"):
            obs = Observability()
            res, _ = _execute(cfg, _make_backend(kind), obs=obs)
            ratio = obs.metrics.gauge("backend.io_ratio").value
            assert ratio > 0
            m = res.backend_metrics
            assert ratio == m.wall_s / res.stats.io_time_s
            assert obs.metrics.gauge("backend.bytes_read").value == \
                m.bytes_read
            ratios[kind] = ratio
        return ratios

    ratios = run_once(benchmark, sweep)
    json_out(
        "backend_io_ratio", {"object_io_ratio": ratios["object"]},
        n=n, workload="mxm", version="c-opt",
    )
    print()
    for kind, ratio in ratios.items():
        det = "deterministic" if kind == "object" else "wall-clock"
        print(f"  {kind:8s} measured/modeled io ratio = {ratio:10.6f} ({det})")
    if not smoke:
        _SECTIONS["io_ratio"] = {
            "n": n,
            "ratios": ratios,
            "gated": ["object"],
        }
        _write_artifact()


def _write_artifact():
    payload = {"sweep_n": SWEEP_N, **_SECTIONS}
    ARTIFACT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"  wrote {ARTIFACT.name}")
